"""Open-loop load generation against a serving-tier gateway.

**Open loop** means arrivals are scheduled by *target time*, planned
before the first byte is sent: request *i* fires at ``schedule[i]``
seconds after the run starts whether or not requests ``0..i-1`` have
been answered.  A slow or overloaded server therefore cannot slow the
arrival sequence down -- the defining difference from a closed-loop
client, whose "RPS" silently degrades into "as fast as the server
lets me" exactly when the measurement matters most (coordinated
omission).  The schedule and the query mix are both derived from the
run spec's seed, so the same run id always offers the server the same
work in the same order.

Mechanics: a scheduler loop sleeps until each arrival's target time and
hands the request to a thread pool sized for the whole run; each worker
thread keeps its own :class:`~repro.serving.client.GatewayClient`
connection.  Dispatch never waits on a response.  If the pool does back
up (more in-flight requests than workers), the lateness is *recorded*,
not hidden: every :class:`RequestRecord` carries ``lag_s = sent_s -
scheduled_s`` and the collector surfaces the maximum.

Outcomes are typed, never exceptions out of :meth:`OpenLoopClient.run`:

* ``ok`` -- answered on the first attempt;
* ``retried`` -- transport died mid-request, one reconnect+resend
  answered (the request *was* served; counted with ``ok`` everywhere);
* ``shed`` -- the gateway's admission control rejected it
  (``Rejected(overloaded)``); excluded from latency percentiles;
* ``unavailable`` -- a site stayed dead through the coordinator's retry
  (``Rejected(site-unavailable)``);
* ``error`` -- any other typed rejection or transport failure.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.client import GatewayClient
from repro.serving.protocol import (
    Overloaded,
    ProtocolError,
    ServingError,
    SiteUnavailable,
    metrics_from_wire,
)
from repro.workloads.pubsub import subscription_texts

from repro.loadgen.runtable import RunSpec

#: Every status :meth:`OpenLoopClient.run` may record.
OUTCOMES = ("ok", "retried", "shed", "unavailable", "error")

#: Statuses that mean "the gateway served this request" -- the ones
#: latency percentiles and throughput are computed over.
SERVED = ("ok", "retried")

_TRANSPORT_ERRORS = (ProtocolError, ConnectionError, OSError, TimeoutError)


def plan_arrivals(
    count: int, rate: float, mode: str = "poisson", seed: int = 0
) -> Tuple[float, ...]:
    """Arrival offsets (seconds from run start), planned up front.

    ``fixed`` spaces arrivals exactly ``1/rate`` apart; ``poisson``
    draws exponential inter-arrival gaps with mean ``1/rate`` from
    ``random.Random(seed)``.  Both start at 0.0 and are non-decreasing;
    same ``(count, rate, mode, seed)`` -> identical schedule.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if mode == "fixed":
        return tuple(index / rate for index in range(count))
    if mode != "poisson":
        raise ValueError(f"unknown arrival mode {mode!r}; choose poisson or fixed")
    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    for _ in range(count):
        offsets.append(clock)
        clock += rng.expovariate(rate)
    return tuple(offsets)


def plan_batches(
    count: int, batch_size: int, seed: int = 0
) -> Tuple[Tuple[str, ...], ...]:
    """The query mix: ``count`` pre-planned batches of ``batch_size`` texts.

    Drawn from the pub/sub subscription pool (popular texts recur, so
    the server's planner has duplicates to collapse), deterministically
    from ``seed``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    texts = subscription_texts(count * batch_size, seed=seed)
    return tuple(
        tuple(texts[index * batch_size : (index + 1) * batch_size])
        for index in range(count)
    )


def plan_for_spec(spec: RunSpec) -> Tuple[Tuple[float, ...], Tuple[Tuple[str, ...], ...]]:
    """The full request plan a run spec determines: (schedule, batches)."""
    schedule = plan_arrivals(spec.requests, spec.arrival_rate, spec.arrival, spec.seed)
    batches = plan_batches(spec.requests, spec.batch_size, spec.seed)
    return schedule, batches


@dataclass
class RequestRecord:
    """One request's life, as the collector writes it to ``requests.jsonl``."""

    index: int
    scheduled_s: float
    sent_s: float
    done_s: float
    latency_s: float
    status: str
    answers: Tuple[bool, ...] = ()
    ledger_bytes: int = 0
    error: str = ""

    @property
    def served(self) -> bool:
        return self.status in SERVED

    @property
    def lag_s(self) -> float:
        """Dispatch lateness vs the open-loop schedule (0 when on time)."""
        return max(0.0, self.sent_s - self.scheduled_s)

    def to_obj(self) -> Dict[str, object]:
        obj = asdict(self)
        obj["answers"] = list(self.answers)
        obj["lag_s"] = round(self.lag_s, 6)
        return obj


class OpenLoopClient:
    """Fire a pre-planned request sequence at a gateway, open loop."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        engine: str = "",
        timeout: float = 30.0,
        max_workers: int = 64,
        trace_every: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.engine = engine
        self.timeout = timeout
        self.max_workers = max_workers
        #: Trace every N-th request (0 = never); traced replies' span
        #: trees accumulate on :attr:`spans` for the collector's sample.
        self.trace_every = trace_every
        self.spans: List[tuple] = []
        self._local = threading.local()
        self._clients: List[GatewayClient] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Connections: one per worker thread, created lazily
    # ------------------------------------------------------------------
    def _client(self) -> GatewayClient:
        client = getattr(self._local, "client", None)
        if client is None or client.closed:
            client = GatewayClient(self.host, self.port, timeout=self.timeout)
            self._local.client = client
            with self._lock:
                self._clients.append(client)
        return client

    def _drop_thread_client(self) -> None:
        client = getattr(self._local, "client", None)
        self._local.client = None
        if client is not None:
            client.close()

    def close(self) -> None:
        with self._lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()

    def __enter__(self) -> "OpenLoopClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(
        self,
        schedule: Sequence[float],
        batches: Sequence[Sequence[str]],
    ) -> List[RequestRecord]:
        """Execute the plan; returns one record per request, in order."""
        if len(schedule) != len(batches):
            raise ValueError(
                f"schedule has {len(schedule)} arrivals but {len(batches)} batches"
            )
        count = len(schedule)
        records: List[Optional[RequestRecord]] = [None] * count
        workers = max(1, min(count, self.max_workers))
        pool = ThreadPoolExecutor(workers, thread_name_prefix="repro-loadgen")
        base = time.perf_counter()
        futures = []
        try:
            for index, (offset, batch) in enumerate(zip(schedule, batches)):
                # Sleep until the *target* time -- never until the
                # previous response.  This loop is the open-loop property.
                delay = base + offset - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(
                    pool.submit(self._fire, index, offset, tuple(batch), base, records)
                )
            for future in futures:
                future.result()  # workers never raise; surface bugs loudly
        finally:
            pool.shutdown(wait=True)
            self.close()
        return [record for record in records if record is not None]

    def _fire(
        self,
        index: int,
        scheduled_s: float,
        batch: Tuple[str, ...],
        base: float,
        records: List[Optional[RequestRecord]],
    ) -> None:
        trace = bool(self.trace_every) and index % self.trace_every == 0
        sent_s = time.perf_counter() - base
        status, answers, ledger_bytes, error = self._attempt(batch, trace)
        if status == "__retry__":
            # The transport died under us; one reconnect+resend.  A
            # success is the typed "retried" outcome, a second failure
            # keeps the retried attempt's typed result.
            status, answers, ledger_bytes, error = self._attempt(batch, trace)
            if status == "__retry__":
                status, error = "error", error or "transport failed twice"
            elif status == "ok":
                status = "retried"
        done_s = time.perf_counter() - base
        records[index] = RequestRecord(
            index=index,
            scheduled_s=round(scheduled_s, 6),
            sent_s=round(sent_s, 6),
            done_s=round(done_s, 6),
            latency_s=round(done_s - sent_s, 6),
            status=status,
            answers=answers,
            ledger_bytes=ledger_bytes,
            error=error,
        )

    def _attempt(
        self, batch: Tuple[str, ...], trace: bool
    ) -> Tuple[str, Tuple[bool, ...], int, str]:
        """One request attempt -> (status, answers, ledger_bytes, error).

        ``"__retry__"`` is the internal "transport broke, try once more"
        signal; it never reaches a record.
        """
        try:
            client = self._client()
        except OSError as exc:
            return "__retry__", (), 0, f"connect: {exc}"
        try:
            reply = client.query(batch, self.engine, trace=trace)
        except Overloaded as exc:
            return "shed", (), 0, str(exc)
        except SiteUnavailable as exc:
            return "unavailable", (), 0, str(exc)
        except ServingError as exc:
            return "error", (), 0, f"{type(exc).__name__}: {exc}"
        except _TRANSPORT_ERRORS as exc:
            self._drop_thread_client()
            return "__retry__", (), 0, f"{type(exc).__name__}: {exc}"
        if trace and reply.spans:
            with self._lock:
                self.spans.extend(reply.spans)
        ledger_bytes = metrics_from_wire(reply.metrics_obj).bytes_total
        return "ok", tuple(bool(a) for a in reply.answers), ledger_bytes, ""


__all__ = [
    "OUTCOMES",
    "SERVED",
    "OpenLoopClient",
    "RequestRecord",
    "plan_arrivals",
    "plan_batches",
    "plan_for_spec",
]
