"""The separate analysis step: read ``run_table.csv``, compare, gate.

Deliberately decoupled from collection (muBench-style): the collector
only measures and writes artifacts; this module turns an aggregate CSV
into per-factor deltas and a pass/fail verdict against the committed
``BENCH_loadtest.json`` baseline.  Re-analysis of an old run directory
is therefore always possible without re-driving any load.

Gate philosophy (quick scale, CI):

* **Exact** where the system is deterministic -- the run-id set must
  match the baseline's, every request must be accounted for by a typed
  outcome, ``bytes_on_wire`` must equal the baseline byte for byte
  (same run id -> same planned queries -> same simulated ledger).
* **Generous tolerances** where wall clocks rule -- shared CI runners
  jitter, so throughput may sink to ``1/LATENCY_TOLERANCE`` of baseline
  and p95 may grow ``LATENCY_TOLERANCE``x before the gate trips.  The
  gate exists to catch a serving-tier regression measured in multiples,
  not a noisy percent.
* **Zero tolerance for the wrong failure kind** -- a healthy quick-scale
  cluster must produce no ``unavailable``/``error`` outcomes at all,
  and no more shedding than the baseline saw (plus one request's worth
  of slack).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.loadgen.collector import RUN_TABLE_COLUMNS

#: Factors the delta report sweeps (a subset of the CSV columns).
FACTORS = (
    "topology",
    "fragments",
    "engine",
    "executor",
    "coordinators",
    "batch_size",
    "arrival_rate",
)

#: Multiplier bounding how much worse wall-clock columns may get before
#: the baseline gate fails (CI runners are shared and noisy).
LATENCY_TOLERANCE = 4.0

#: Extra shed fraction allowed over the baseline's recorded rate.
SHED_SLACK = 0.02

_INT_COLUMNS = (
    "fragments",
    "coordinators",
    "batch_size",
    "repetition",
    "seed",
    "nodes_per_mb",
    "requests",
    "ok",
    "retried",
    "shed",
    "unavailable",
    "errors",
    "bytes_on_wire",
)
_FLOAT_COLUMNS = (
    "arrival_rate",
    "total_mb",
    "duration_s",
    "throughput_rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "shed_rate",
    "max_lag_s",
)


def load_run_table(path: Path) -> List[Dict[str, object]]:
    """Parse an aggregate CSV back into typed row dicts."""
    rows: List[Dict[str, object]] = []
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(RUN_TABLE_COLUMNS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"run table is missing columns: {sorted(missing)}")
        for raw in reader:
            row: Dict[str, object] = dict(raw)
            for column in _INT_COLUMNS:
                row[column] = int(float(raw[column])) if raw[column] != "" else 0
            for column in _FLOAT_COLUMNS:
                row[column] = float(raw[column]) if raw[column] != "" else None
            rows.append(row)
    return rows


def _mean(values: Sequence[Optional[float]]) -> Optional[float]:
    present = [value for value in values if value is not None]
    if not present:
        return None
    return sum(present) / len(present)


def factor_deltas(rows: Sequence[Mapping[str, object]]) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Per-factor, per-level aggregate means.

    ``{factor: {level: {"runs": n, "throughput_rps": ..., "p95_ms": ...,
    "shed_rate": ..., "bytes_on_wire": ...}}}`` -- only factors with at
    least two observed levels appear (a constant column has no delta to
    report).
    """
    out: Dict[str, Dict[str, Dict[str, object]]] = {}
    for factor in FACTORS:
        levels: Dict[str, List[Mapping[str, object]]] = {}
        for row in rows:
            levels.setdefault(str(row[factor]), []).append(row)
        if len(levels) < 2:
            continue
        out[factor] = {}
        for level, members in sorted(levels.items()):
            out[factor][level] = {
                "runs": len(members),
                "throughput_rps": _round(_mean([m["throughput_rps"] for m in members])),
                "p95_ms": _round(_mean([m["p95_ms"] for m in members])),
                "shed_rate": _round(_mean([m["shed_rate"] for m in members]), 4),
                "bytes_on_wire": _round(_mean([float(m["bytes_on_wire"]) for m in members])),
            }
    return out


def _round(value: Optional[float], digits: int = 3) -> Optional[float]:
    return None if value is None else round(value, digits)


def render_deltas(deltas: Mapping[str, Mapping[str, Mapping[str, object]]]) -> str:
    lines: List[str] = []
    for factor, levels in deltas.items():
        lines.append(f"{factor}:")
        for level, stats in levels.items():
            lines.append(
                f"  {level:>12}: {stats['throughput_rps']} req/s  "
                f"p95={stats['p95_ms']}ms  shed={stats['shed_rate']}  "
                f"bytes={stats['bytes_on_wire']} ({stats['runs']} run(s))"
            )
    return "\n".join(lines) if lines else "(single-level table: no factor deltas)"


# ---------------------------------------------------------------------------
# Baseline document (BENCH_loadtest.json)
# ---------------------------------------------------------------------------

#: Per-run fields recorded in (and gated against) the baseline.
BASELINE_RUN_FIELDS = ("throughput_rps", "p95_ms", "shed_rate", "bytes_on_wire")


def build_baseline_entry(rows: Sequence[Mapping[str, object]], scale: str) -> Dict[str, object]:
    """The committed-baseline entry for one scale, from measured rows."""
    runs = {
        str(row["run_id"]): {field: row[field] for field in BASELINE_RUN_FIELDS}
        for row in rows
    }
    return {
        "scale": scale,
        "runs": runs,
        "throughput_rps": _round(_mean([row["throughput_rps"] for row in rows])),
        "p95_ms": _round(_mean([row["p95_ms"] for row in rows])),
        "shed_rate": _round(_mean([row["shed_rate"] for row in rows]), 4),
    }


def check_baseline_format(doc: object) -> List[str]:
    """Schema problems in a BENCH_loadtest.json document ([] = well-formed)."""
    problems: List[str] = []
    if not isinstance(doc, dict) or not doc:
        return ["baseline must be a non-empty JSON object keyed by scale"]
    for scale, entry in doc.items():
        prefix = f"scale {scale!r}"
        if not isinstance(entry, dict):
            problems.append(f"{prefix}: entry must be an object")
            continue
        if entry.get("scale") != scale:
            problems.append(f"{prefix}: 'scale' field must equal its key")
        runs = entry.get("runs")
        if not isinstance(runs, dict) or not runs:
            problems.append(f"{prefix}: 'runs' must be a non-empty object")
            runs = {}
        for run_id, run in runs.items():
            if not isinstance(run, dict):
                problems.append(f"{prefix}: run {run_id!r} must be an object")
                continue
            for field in BASELINE_RUN_FIELDS:
                if field not in run:
                    problems.append(f"{prefix}: run {run_id!r} is missing {field!r}")
        for field in ("throughput_rps", "p95_ms", "shed_rate"):
            if not isinstance(entry.get(field), (int, float)):
                problems.append(f"{prefix}: aggregate {field!r} must be a number")
    return problems


def load_baseline(path: Path) -> Dict[str, object]:
    doc = json.loads(Path(path).read_text())
    problems = check_baseline_format(doc)
    if problems:
        raise ValueError(
            "malformed baseline %s: %s" % (path, "; ".join(problems))
        )
    return doc


def gate_against_baseline(
    rows: Sequence[Mapping[str, object]],
    baseline_entry: Mapping[str, object],
    *,
    latency_tolerance: float = LATENCY_TOLERANCE,
    shed_slack: float = SHED_SLACK,
) -> List[str]:
    """Regression failures of measured rows vs one baseline scale entry.

    Returns a list of human-readable failure strings; empty = PASS.
    """
    failures: List[str] = []
    baseline_runs: Mapping[str, Mapping[str, object]] = baseline_entry["runs"]  # type: ignore[assignment]
    measured_ids = {str(row["run_id"]) for row in rows}
    expected_ids = set(baseline_runs)
    if measured_ids != expected_ids:
        failures.append(
            f"run-id set changed vs baseline "
            f"(missing {sorted(expected_ids - measured_ids)}, "
            f"new {sorted(measured_ids - expected_ids)}); regenerate the baseline"
        )
    for row in rows:
        run_id = str(row["run_id"])
        accounted = row["ok"] + row["retried"] + row["shed"] + row["unavailable"] + row["errors"]
        if accounted != row["requests"]:
            failures.append(
                f"{run_id}: {accounted} typed outcomes for {row['requests']} requests"
            )
        if row["unavailable"] or row["errors"]:
            failures.append(
                f"{run_id}: healthy cluster produced "
                f"{row['unavailable']} unavailable / {row['errors']} error outcomes"
            )
        reference = baseline_runs.get(run_id)
        if reference is None:
            continue
        if row["bytes_on_wire"] != reference["bytes_on_wire"]:
            failures.append(
                f"{run_id}: bytes_on_wire {row['bytes_on_wire']} != baseline "
                f"{reference['bytes_on_wire']} (deterministic ledger changed)"
            )
    mean_throughput = _mean([row["throughput_rps"] for row in rows])
    mean_p95 = _mean([row["p95_ms"] for row in rows])
    mean_shed = _mean([row["shed_rate"] for row in rows]) or 0.0
    base_throughput = float(baseline_entry["throughput_rps"])  # type: ignore[arg-type]
    base_p95 = float(baseline_entry["p95_ms"])  # type: ignore[arg-type]
    base_shed = float(baseline_entry["shed_rate"])  # type: ignore[arg-type]
    if mean_throughput is not None and mean_throughput < base_throughput / latency_tolerance:
        failures.append(
            f"mean throughput {mean_throughput:.2f} req/s fell below "
            f"{base_throughput:.2f}/{latency_tolerance:g} req/s"
        )
    if mean_p95 is not None and mean_p95 > base_p95 * latency_tolerance:
        failures.append(
            f"mean p95 {mean_p95:.2f}ms exceeds baseline {base_p95:.2f}ms "
            f"x{latency_tolerance:g}"
        )
    if mean_shed > base_shed + shed_slack:
        failures.append(
            f"shed rate {mean_shed:.4f} exceeds baseline {base_shed:.4f} + {shed_slack}"
        )
    return failures


def analyze(
    run_table_path: Path,
    *,
    baseline_path: Optional[Path] = None,
    scale: Optional[str] = None,
) -> Dict[str, object]:
    """The whole separate step: load, delta, optionally gate.

    Returns ``{"rows", "deltas", "failures", "scale"}``; ``failures`` is
    None when no baseline was requested, a (possibly empty) list when a
    baseline entry for this scale was found.
    """
    rows = load_run_table(run_table_path)
    if not rows:
        raise ValueError(f"{run_table_path} contains no runs")
    scale = scale or str(rows[0]["scale"])
    deltas = factor_deltas(rows)
    failures: Optional[List[str]] = None
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = load_baseline(baseline_path)
        entry = baseline.get(scale)
        if entry is not None:
            failures = gate_against_baseline(rows, entry)
    return {"rows": rows, "deltas": deltas, "failures": failures, "scale": scale}


__all__ = [
    "BASELINE_RUN_FIELDS",
    "FACTORS",
    "LATENCY_TOLERANCE",
    "SHED_SLACK",
    "analyze",
    "build_baseline_entry",
    "check_baseline_format",
    "factor_deltas",
    "gate_against_baseline",
    "load_baseline",
    "load_run_table",
    "render_deltas",
]
