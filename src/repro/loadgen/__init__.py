"""Open-loop load harness + factorial experiment runner (``repro loadtest``).

The whole-system perf surface over the serving tier: declare a run
table (:mod:`~repro.loadgen.runtable`), drive each run with an
open-loop client (:mod:`~repro.loadgen.client`), collect per-run raw
artifacts and the aggregate ``run_table.csv``
(:mod:`~repro.loadgen.collector`), then analyze and regression-gate as
a separate step (:mod:`~repro.loadgen.analyze`).
"""

from repro.loadgen.analyze import (
    analyze,
    build_baseline_entry,
    check_baseline_format,
    factor_deltas,
    gate_against_baseline,
    load_baseline,
    load_run_table,
    render_deltas,
)
from repro.loadgen.client import (
    OUTCOMES,
    SERVED,
    OpenLoopClient,
    RequestRecord,
    plan_arrivals,
    plan_batches,
    plan_for_spec,
)
from repro.loadgen.collector import (
    RUN_TABLE_COLUMNS,
    execute_run,
    execute_table,
    latency_percentiles_ms,
    summarize_run,
    write_run_table,
)
from repro.loadgen.runtable import (
    RunSpec,
    RunTable,
    build_cluster,
    default_table,
    derive_seed,
    quick_table,
    table_for_scale,
)

__all__ = [
    "OUTCOMES",
    "RUN_TABLE_COLUMNS",
    "SERVED",
    "OpenLoopClient",
    "RequestRecord",
    "RunSpec",
    "RunTable",
    "analyze",
    "build_baseline_entry",
    "build_cluster",
    "check_baseline_format",
    "default_table",
    "derive_seed",
    "execute_run",
    "execute_table",
    "factor_deltas",
    "gate_against_baseline",
    "latency_percentiles_ms",
    "load_baseline",
    "load_run_table",
    "plan_arrivals",
    "plan_batches",
    "plan_for_spec",
    "quick_table",
    "render_deltas",
    "summarize_run",
    "table_for_scale",
    "write_run_table",
]
