"""XML writer and wire-size accounting.

``serialize`` renders a node or tree back to text (virtual nodes become
``<frag:ref id="..."/>`` so fragment forests round-trip), while
``estimated_wire_bytes`` computes the byte cost of shipping a subtree
without materializing the string -- this is what the NaiveCentralized
baseline charges to the network when it ships fragments to the
coordinator.
"""

from __future__ import annotations

from typing import Union

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def _escape(text: str) -> str:
    if any(ch in text for ch in _ESCAPES):
        for raw, cooked in _ESCAPES.items():
            text = text.replace(raw, cooked)
    return text


def serialize(item: Union[XMLNode, XMLTree], indent: int = 0) -> str:
    """Render a tree or subtree as XML text.

    ``indent > 0`` pretty-prints with that many spaces per level;
    ``indent == 0`` produces the compact single-line form used for wire
    transfers.
    """
    node = item.root if isinstance(item, XMLTree) else item
    pieces: list[str] = []
    _render(node, pieces, indent, 0)
    return "".join(pieces)


def _render(node: XMLNode, pieces: list[str], indent: int, level: int) -> None:
    pad = " " * (indent * level) if indent else ""
    newline = "\n" if indent else ""
    if node.is_virtual:
        pieces.append(f'{pad}<frag:ref id="{node.fragment_ref}"/>{newline}')
        return
    if not node.children and node.text is None:
        pieces.append(f"{pad}<{node.label}/>{newline}")
        return
    pieces.append(f"{pad}<{node.label}>")
    if node.text is not None:
        pieces.append(_escape(node.text))
    if node.children:
        pieces.append(newline)
        for child in node.children:
            _render(child, pieces, indent, level + 1)
        pieces.append(pad)
    pieces.append(f"</{node.label}>{newline}")


def estimated_wire_bytes(item: Union[XMLNode, XMLTree]) -> int:
    """Byte size of the compact serialization, computed without rendering.

    The estimate matches ``len(serialize(item, indent=0))`` for trees
    without characters needing escaping, and is within the escaping
    overhead otherwise.  It is the cost model used for data shipping.
    """
    node = item.root if isinstance(item, XMLTree) else item
    total = 0
    for current in node.iter_subtree():
        if current.is_virtual:
            total += len('<frag:ref id=""/>') + len(current.fragment_ref or "")
        elif not current.children and current.text is None:
            total += len(current.label) + 3  # <label/>
        else:
            total += 2 * len(current.label) + 5  # <label></label>
            if current.text is not None:
                total += len(current.text)
    return total


__all__ = ["serialize", "estimated_wire_bytes"]
