"""XML tree substrate.

The paper's algorithms operate on ordered, labelled trees in which some
leaves are *virtual nodes* -- placeholders standing for sub-fragments that
live on other sites (Section 2.1 of the paper).  No stock XML library
models virtual nodes, so this package provides the tree model used by the
whole repository:

* :class:`~repro.xmltree.node.XMLNode` -- a mutable ordered tree node with
  a label, optional text content, and an optional ``fragment_ref`` marking
  it as virtual;
* :class:`~repro.xmltree.tree.XMLTree` -- a document wrapper offering node
  lookup by stable id, size accounting and structural equality;
* :func:`~repro.xmltree.parser.parse_xml` /
  :func:`~repro.xmltree.serializer.serialize` -- a small, dependency-free
  XML reader/writer (virtual nodes round-trip as ``<frag:ref id="..."/>``);
* :class:`~repro.xmltree.builder.TreeBuilder` -- a fluent builder used by
  tests and examples.
"""

from repro.xmltree.node import XMLNode, VIRTUAL_LABEL_PREFIX
from repro.xmltree.tree import XMLTree
from repro.xmltree.parser import parse_xml, XMLParseError
from repro.xmltree.serializer import serialize, estimated_wire_bytes
from repro.xmltree.builder import TreeBuilder, element

__all__ = [
    "XMLNode",
    "XMLTree",
    "TreeBuilder",
    "element",
    "parse_xml",
    "serialize",
    "estimated_wire_bytes",
    "XMLParseError",
    "VIRTUAL_LABEL_PREFIX",
]
