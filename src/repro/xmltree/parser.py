"""A small, dependency-free XML reader.

The repository cannot rely on ``lxml`` (not available offline) and the
paper's trees contain *virtual nodes* which stock parsers cannot express,
so we ship our own recursive-descent parser.  It understands the subset of
XML the workloads emit:

* elements with attributes (attributes are parsed and kept, but the XBL
  query language does not address them),
* text content (entity references ``&amp; &lt; &gt; &quot; &apos;``),
* comments, processing instructions and an optional XML declaration
  (all skipped),
* the repository's virtual-node encoding ``<frag:ref id="F2"/>``.

Mixed content is simplified to the paper's model: the concatenated text of
an element's direct character data becomes the element's ``text`` value.
"""

from __future__ import annotations


from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree

#: Element name used to round-trip virtual nodes through text form.
VIRTUAL_ELEMENT = "frag:ref"

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


class XMLParseError(ValueError):
    """Raised on malformed input; carries the byte offset of the error."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class _Cursor:
    """Character cursor with the few scanning primitives the grammar needs."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        while not self.eof() and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise XMLParseError(f"expected {token!r}", self.pos)
        self.pos += len(token)

    def scan_until(self, token: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise XMLParseError(f"unterminated construct, missing {token!r}", self.pos)
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk


def parse_xml(text: str) -> XMLTree:
    """Parse ``text`` into an :class:`~repro.xmltree.tree.XMLTree`."""
    cursor = _Cursor(text)
    _skip_misc(cursor)
    root = _parse_element(cursor)
    _skip_misc(cursor)
    if not cursor.eof():
        raise XMLParseError("trailing content after document element", cursor.pos)
    return XMLTree(root)


def _skip_misc(cursor: _Cursor) -> None:
    """Skip whitespace, comments, PIs and the XML declaration."""
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.scan_until("-->")
        elif cursor.startswith("<?"):
            cursor.advance(2)
            cursor.scan_until("?>")
        else:
            return


def _parse_name(cursor: _Cursor) -> str:
    start = cursor.pos
    while not cursor.eof():
        ch = cursor.peek()
        if ch.isalnum() or ch in "_-.:":
            cursor.advance()
        else:
            break
    if cursor.pos == start:
        raise XMLParseError("expected a name", cursor.pos)
    return cursor.text[start : cursor.pos]


def _parse_attributes(cursor: _Cursor) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        cursor.skip_whitespace()
        ch = cursor.peek()
        if ch in (">", "/", ""):
            return attributes
        name = _parse_name(cursor)
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise XMLParseError("attribute value must be quoted", cursor.pos)
        cursor.advance()
        raw = cursor.scan_until(quote)
        attributes[name] = _decode_entities(raw, cursor.pos)


def _parse_element(cursor: _Cursor) -> XMLNode:
    cursor.expect("<")
    label = _parse_name(cursor)
    attributes = _parse_attributes(cursor)
    cursor.skip_whitespace()

    if label == VIRTUAL_ELEMENT:
        fragment_id = attributes.get("id")
        if not fragment_id:
            raise XMLParseError("virtual node missing id attribute", cursor.pos)
        if cursor.startswith("/>"):
            cursor.advance(2)
            return XMLNode.virtual(fragment_id)
        raise XMLParseError("virtual nodes must be self-closing", cursor.pos)

    if cursor.startswith("/>"):
        cursor.advance(2)
        return XMLNode(label)
    cursor.expect(">")

    node = XMLNode(label)
    text_pieces: list[str] = []
    while True:
        if cursor.startswith("</"):
            cursor.advance(2)
            closing = _parse_name(cursor)
            if closing != label:
                raise XMLParseError(
                    f"mismatched closing tag {closing!r} for {label!r}", cursor.pos
                )
            cursor.skip_whitespace()
            cursor.expect(">")
            break
        if cursor.startswith("<!--"):
            cursor.advance(4)
            cursor.scan_until("-->")
        elif cursor.startswith("<![CDATA["):
            cursor.advance(9)
            text_pieces.append(cursor.scan_until("]]>"))
        elif cursor.startswith("<?"):
            cursor.advance(2)
            cursor.scan_until("?>")
        elif cursor.peek() == "<":
            node.add_child(_parse_element(cursor))
        elif cursor.eof():
            raise XMLParseError(f"unterminated element {label!r}", cursor.pos)
        else:
            start = cursor.pos
            while not cursor.eof() and cursor.peek() != "<":
                cursor.advance()
            text_pieces.append(_decode_entities(cursor.text[start : cursor.pos], start))

    text = "".join(text_pieces).strip()
    node.text = text if text else None
    return node


def _decode_entities(raw: str, position: int) -> str:
    if "&" not in raw:
        return raw
    out: list[str] = []
    index = 0
    while index < len(raw):
        ch = raw[index]
        if ch != "&":
            out.append(ch)
            index += 1
            continue
        end = raw.find(";", index)
        if end < 0:
            raise XMLParseError("unterminated entity reference", position)
        name = raw[index + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", position)
        index = end + 1
    return "".join(out)


def parse_fragment_root(text: str) -> XMLNode:
    """Parse a single element (without requiring a full document)."""
    cursor = _Cursor(text)
    _skip_misc(cursor)
    node = _parse_element(cursor)
    return node


__all__ = ["parse_xml", "parse_fragment_root", "XMLParseError", "VIRTUAL_ELEMENT"]
