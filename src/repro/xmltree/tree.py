"""Document wrapper over :class:`~repro.xmltree.node.XMLNode`.

``XMLTree`` adds what the raw node graph lacks: lookup of nodes by stable
id (needed by the update operations of Section 5), cached size accounting,
and a mutation *version* counter so caches are invalidated when the tree
changes.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.xmltree.node import XMLNode


class XMLTree:
    """A rooted XML document.

    All mutations of the tree should go through :meth:`insert_node`,
    :meth:`delete_node` or :meth:`touch` so the internal caches stay
    coherent.  Reads never mutate.
    """

    def __init__(self, root: XMLNode) -> None:
        if root.parent is not None:
            raise ValueError("tree root must not have a parent")
        self.root = root
        self._version = 0
        self._index_version = -1
        self._index: dict[int, XMLNode] = {}
        self._size_version = -1
        self._size = 0

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation."""
        return self._version

    def touch(self) -> None:
        """Record that the tree was mutated out-of-band.

        Callers that mutate nodes directly (e.g. the fragmenters, which
        splice virtual nodes in and out) must call this to invalidate the
        id index and size caches.
        """
        self._version += 1

    def _ensure_index(self) -> None:
        if self._index_version != self._version:
            self._index = {node.node_id: node for node in self.root.iter_subtree()}
            self._index_version = self._version

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node_by_id(self, node_id: int) -> XMLNode:
        """Return the node with ``node_id``; raise ``KeyError`` if absent."""
        self._ensure_index()
        return self._index[node_id]

    def contains_node(self, node: XMLNode) -> bool:
        """True when ``node`` currently belongs to this tree."""
        self._ensure_index()
        return self._index.get(node.node_id) is node

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes in document order (virtual nodes included)."""
        return self.root.iter_subtree()

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of non-virtual nodes (the paper's |T|); cached."""
        if self._size_version != self._version:
            self._size = self.root.subtree_size()
            self._size_version = self._version
        return self._size

    def height(self) -> int:
        """Height of the tree in edges."""
        return self.root.height()

    # ------------------------------------------------------------------
    # Mutation (Section 5 primitive operations operate via these)
    # ------------------------------------------------------------------
    def insert_node(
        self,
        label: str,
        parent: XMLNode,
        text: Optional[str] = None,
        index: Optional[int] = None,
    ) -> XMLNode:
        """Insert a fresh node labelled ``label`` as a child of ``parent``.

        This is the paper's ``insNode(A, v)``: it returns the newly
        inserted node.
        """
        if not self.contains_node(parent):
            raise ValueError("parent does not belong to this tree")
        node = XMLNode(label, text=text)
        parent.add_child(node, index=index)
        self.touch()
        return node

    def delete_node(self, node: XMLNode) -> XMLNode:
        """Delete ``node`` (with its subtree); the paper's ``delNode(v)``.

        Deleting the root is rejected -- a document always has a root.
        """
        if node is self.root:
            raise ValueError("cannot delete the root of a tree")
        if not self.contains_node(node):
            raise ValueError("node does not belong to this tree")
        node.detach()
        self.touch()
        return node

    # ------------------------------------------------------------------
    # Comparison / copying
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "XMLTree") -> bool:
        """Label/text/order equality of the two documents."""
        return self.root.structurally_equal(other.root)

    def deep_copy(self) -> "XMLTree":
        """An independent copy of the document (fresh node ids)."""
        return XMLTree(self.root.deep_copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XMLTree root={self.root.label!r} size={self.size()}>"
