"""Fluent tree construction for tests, examples and workload generators.

Two styles are offered:

* :func:`element` -- a nested-call DSL::

      tree = XMLTree(element("portfolio",
          element("broker",
              element("name", text="Bache"))))

* :class:`TreeBuilder` -- an imperative builder with ``open``/``close``
  used by generators that emit large documents in a streaming fashion.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree


def element(
    label: str,
    *children: Union[XMLNode, str],
    text: Optional[str] = None,
) -> XMLNode:
    """Build an :class:`XMLNode` from nested calls.

    String positional arguments are shorthand for text content (at most
    one may be given, and not together with ``text=``).
    """
    node_children: list[XMLNode] = []
    for child in children:
        if isinstance(child, str):
            if text is not None:
                raise ValueError("multiple text values for one element")
            text = child
        else:
            node_children.append(child)
    return XMLNode(label, text=text, children=node_children)


class TreeBuilder:
    """Imperative builder: ``open(label)`` ... ``close()`` with auto-nesting.

    >>> b = TreeBuilder("site")
    >>> b.open("regions"); b.leaf("africa"); b.close()
    >>> tree = b.build()
    >>> [c.label for c in tree.root.children]
    ['regions']
    """

    def __init__(self, root_label: str, text: Optional[str] = None) -> None:
        self._root = XMLNode(root_label, text=text)
        self._stack: list[XMLNode] = [self._root]
        self._built = False

    @property
    def current(self) -> XMLNode:
        """The innermost open element."""
        return self._stack[-1]

    def open(self, label: str, text: Optional[str] = None) -> XMLNode:
        """Open a nested element; it stays current until :meth:`close`."""
        self._check_open()
        node = XMLNode(label, text=text)
        self.current.add_child(node)
        self._stack.append(node)
        return node

    def leaf(self, label: str, text: Optional[str] = None) -> XMLNode:
        """Add a childless element under the current element."""
        self._check_open()
        node = XMLNode(label, text=text)
        self.current.add_child(node)
        return node

    def virtual_leaf(self, fragment_id: str) -> XMLNode:
        """Add a virtual node referencing ``fragment_id``."""
        self._check_open()
        node = XMLNode.virtual(fragment_id)
        self.current.add_child(node)
        return node

    def close(self) -> None:
        """Close the innermost open element."""
        self._check_open()
        if len(self._stack) == 1:
            raise ValueError("close() without a matching open()")
        self._stack.pop()

    def build(self) -> XMLTree:
        """Finish and return the document; the builder cannot be reused."""
        self._check_open()
        if len(self._stack) != 1:
            raise ValueError(f"{len(self._stack) - 1} element(s) left open")
        self._built = True
        return XMLTree(self._root)

    def _check_open(self) -> None:
        if self._built:
            raise ValueError("builder already consumed by build()")


__all__ = ["element", "TreeBuilder"]
