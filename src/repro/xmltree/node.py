"""The ordered-tree node used everywhere in the repository.

A node carries a *label* (the XML element tag), optional *text* content,
and an ordered list of children.  A node may instead be **virtual**: a leaf
that stands for a whole sub-fragment stored elsewhere (paper, Section 2.1).
Virtual nodes carry the id of the fragment they reference in
``fragment_ref`` and are ignored by size accounting.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional

#: Labels of virtual nodes are rendered as ``@<fragment-id>`` for debugging.
VIRTUAL_LABEL_PREFIX = "@"

_node_ids = itertools.count(1)


class XMLNode:
    """A mutable, ordered, labelled tree node.

    Parameters
    ----------
    label:
        Element tag, e.g. ``"broker"``.
    text:
        Optional text content of the element (the paper's model attaches
        the text value directly to the element so that ``text() = 'str'``
        is a test on the node itself; see Example 2.1).
    children:
        Optional initial children; each is re-parented to this node.
    fragment_ref:
        When not ``None`` the node is *virtual* and references the
        fragment with that id.  Virtual nodes must be leaves.
    """

    __slots__ = ("label", "text", "children", "parent", "node_id", "fragment_ref")

    def __init__(
        self,
        label: str,
        text: Optional[str] = None,
        children: Optional[list["XMLNode"]] = None,
        fragment_ref: Optional[str] = None,
    ) -> None:
        if fragment_ref is not None and children:
            raise ValueError("virtual nodes must be leaves")
        self.label = label
        self.text = text
        self.children: list[XMLNode] = []
        self.parent: Optional[XMLNode] = None
        self.node_id: int = next(_node_ids)
        self.fragment_ref = fragment_ref
        for child in children or []:
            self.add_child(child)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def virtual(cls, fragment_id: str) -> "XMLNode":
        """Create a virtual leaf referencing ``fragment_id``."""
        return cls(VIRTUAL_LABEL_PREFIX + fragment_id, fragment_ref=fragment_id)

    @property
    def is_virtual(self) -> bool:
        """True when this node is a placeholder for a remote sub-fragment."""
        return self.fragment_ref is not None

    # ------------------------------------------------------------------
    # Structure mutation
    # ------------------------------------------------------------------
    def add_child(self, child: "XMLNode", index: Optional[int] = None) -> "XMLNode":
        """Attach ``child`` (and its subtree) under this node.

        Returns the child to allow chaining.  Raises if ``child`` already
        has a parent or if this node is virtual.
        """
        if self.is_virtual:
            raise ValueError("cannot attach children to a virtual node")
        if child.parent is not None:
            raise ValueError("node already has a parent; detach() it first")
        if child is self or self._is_descendant_of(child):
            raise ValueError("cannot attach a node under itself")
        if index is None:
            self.children.append(child)
        else:
            self.children.insert(index, child)
        child.parent = self
        return child

    def detach(self) -> "XMLNode":
        """Remove this node (with its subtree) from its parent.

        Returns ``self``; a node without a parent is returned unchanged.
        """
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    def replace_with(self, other: "XMLNode") -> "XMLNode":
        """Substitute ``other`` for this node in the parent's child list.

        The subtree rooted here is detached and returned.  Used by the
        fragmenters to swap a subtree for a virtual node and vice versa.
        """
        parent = self.parent
        if parent is None:
            raise ValueError("cannot replace the root in place")
        index = parent.children.index(self)
        self.detach()
        parent.add_child(other, index=index)
        return self

    def _is_descendant_of(self, other: "XMLNode") -> bool:
        node = self.parent
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield the subtree rooted here in document (pre-) order.

        Virtual nodes are yielded but never descended into (they are
        leaves by construction).
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["XMLNode"]:
        """Yield the subtree rooted here in post-order (children first)."""
        stack: list[tuple[XMLNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                stack.extend((child, False) for child in reversed(node.children))

    def iter_ancestors(self) -> Iterator["XMLNode"]:
        """Yield the chain of ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_first(self, predicate: Callable[["XMLNode"], bool]) -> Optional["XMLNode"]:
        """First node in document order satisfying ``predicate``, or None."""
        for node in self.iter_subtree():
            if predicate(node):
                return node
        return None

    def find_all(self, predicate: Callable[["XMLNode"], bool]) -> list["XMLNode"]:
        """All nodes in document order satisfying ``predicate``."""
        return [node for node in self.iter_subtree() if predicate(node)]

    def find_by_label(self, label: str) -> list["XMLNode"]:
        """All non-virtual descendants-or-self with the given label."""
        return self.find_all(lambda n: not n.is_virtual and n.label == label)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def subtree_size(self) -> int:
        """Number of non-virtual nodes in the subtree (the paper's |F|)."""
        return sum(1 for node in self.iter_subtree() if not node.is_virtual)

    def depth(self) -> int:
        """Edges between this node and the root of its tree."""
        return sum(1 for _ in self.iter_ancestors())

    def height(self) -> int:
        """Longest downward path (in edges) from this node to a leaf."""
        heights: dict[int, int] = {}
        for node in self.iter_postorder():
            heights[node.node_id] = 1 + max(
                (heights[child.node_id] for child in node.children), default=-1
            )
        return heights[self.node_id]

    # ------------------------------------------------------------------
    # Structural comparison / copying
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "XMLNode") -> bool:
        """Label/text/child-order equality, ignoring node ids and parents."""
        if (
            self.label != other.label
            or self.text != other.text
            or self.fragment_ref != other.fragment_ref
            or len(self.children) != len(other.children)
        ):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self.children, other.children)
        )

    def deep_copy(self) -> "XMLNode":
        """Copy the subtree; the copy receives fresh node ids.

        Iterative, and wires parent/children links directly: the source
        is already a valid tree, so ``add_child``'s cycle/reparent
        validation would only re-prove invariants per copied node (and
        recursion would cap the copyable depth).  This sits on the
        NaiveCentralized stitch path, where it is the dominant cost.
        """
        copy = XMLNode(self.label, text=self.text, fragment_ref=self.fragment_ref)
        stack = [(self, copy)]
        while stack:
            source, target = stack.pop()
            target_children = target.children
            for child in source.children:
                child_copy = XMLNode(
                    child.label, text=child.text, fragment_ref=child.fragment_ref
                )
                child_copy.parent = target
                target_children.append(child_copy)
                if child.children:
                    stack.append((child, child_copy))
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "virtual " if self.is_virtual else ""
        return f"<{kind}XMLNode #{self.node_id} {self.label!r} children={len(self.children)}>"
