"""Rewriting XBL queries into the paper's normal form (Section 2.2).

Every path is rewritten to ``β1/…/βn`` with ``βi`` one of ``ε``, ``*``,
``//`` or ``ε[q']``, by the rules::

    normalize(ε) = ε                 (same for *, // and label() = A)
    normalize(A) = */ε[label() = A]
    normalize(p1/p2) = normalize(p1)/normalize(p2)
    normalize(p[q']) = normalize(p)/ε[normalize(q')]
    normalize(q1 ∧ q2) = normalize(q1) ∧ normalize(q2)   (same for ∨, ¬)
    normalize(p/text() = 'str') = normalize(p)[text() = 'str']
    ε[q1]/…/ε[qn] = ε[q1 ∧ … ∧ qn]    (merge adjacent ε steps)

The normalized representation here is a step tuple whose elements are
:class:`NWildcard` (``*``), :class:`NDescendant` (``//``) and
:class:`NSelf` (``ε[q']``; a bare ``ε`` never survives normalization
except as the empty step tuple).  A normalized Boolean expression is an
:data:`NBool` tree whose path atoms are :class:`NExists`.

Fidelity note: Example 2.1 of the paper prints ``//stock`` as
``//ε[label()=stock]``, silently dropping the ``*`` that the rule
``normalize(A) = */ε[label()=A]`` produces.  We follow the *rules* (which
give standard XPath child semantics for ``p1//p2``); the discrepancy is
observable only when a query can match the context node itself and is
discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.xpath.ast import (
    AXIS_DESC,
    AXIS_SELF,
    TEST_LABEL,
    TEST_SELF,
    BAnd,
    BLabelEq,
    BNot,
    BOr,
    BPath,
    BTextEq,
    BoolExpr,
    Path,
)


# ---------------------------------------------------------------------------
# Normalized Boolean expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NLabelIs:
    """``label() = A`` on the context node."""

    label: str


@dataclass(frozen=True)
class NTextIs:
    """``text() = 'str'`` on the context node."""

    value: str


@dataclass(frozen=True)
class NAnd:
    """Binary conjunction (the paper keeps connectives binary)."""

    left: "NBool"
    right: "NBool"


@dataclass(frozen=True)
class NOr:
    """Binary disjunction."""

    left: "NBool"
    right: "NBool"


@dataclass(frozen=True)
class NNot:
    """Negation."""

    operand: "NBool"


@dataclass(frozen=True)
class NExists:
    """Existence of a node reachable via the normalized steps."""

    steps: tuple["NStep", ...]


NBool = Union[NLabelIs, NTextIs, NAnd, NOr, NNot, NExists]


# ---------------------------------------------------------------------------
# Normalized path steps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NSelf:
    """``ε[q']`` -- stay on the current node, requiring ``q'``."""

    qualifier: NBool


@dataclass(frozen=True)
class NWildcard:
    """``*`` -- move to some child."""


@dataclass(frozen=True)
class NDescendant:
    """``//`` -- move to some descendant-or-self node."""


NStep = Union[NSelf, NWildcard, NDescendant]


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def normalize(expr: BoolExpr) -> NBool:
    """Normalize a surface Boolean expression."""
    if isinstance(expr, BAnd):
        return NAnd(normalize(expr.left), normalize(expr.right))
    if isinstance(expr, BOr):
        return NOr(normalize(expr.left), normalize(expr.right))
    if isinstance(expr, BNot):
        return NNot(normalize(expr.operand))
    if isinstance(expr, BLabelEq):
        return NLabelIs(expr.label)
    if isinstance(expr, BPath):
        return NExists(normalize_path(expr.path))
    if isinstance(expr, BTextEq):
        steps = normalize_path(expr.path)
        return NExists(_append_self(steps, NTextIs(expr.value)))
    raise TypeError(f"not a BoolExpr: {expr!r}")


def normalize_path(path: Path) -> tuple[NStep, ...]:
    """Normalize a surface path into a step tuple."""
    steps: list[NStep] = []
    for segment in path.segments:
        if segment.axis == AXIS_DESC:
            steps.append(NDescendant())
        # The move: a child step for label/wildcard tests reached via the
        # child axis (and for the step after //); none for self tests or
        # for the head of an absolute path (axis 'self').
        if segment.test != TEST_SELF and segment.axis != AXIS_SELF:
            steps.append(NWildcard())
        qualifier = _segment_qualifier(segment)
        if qualifier is not None:
            _merge_or_append(steps, NSelf(qualifier))
    return tuple(steps)


def _segment_qualifier(segment) -> Optional[NBool]:
    """Conjunction of the label test (if any) and the [..] qualifiers."""
    parts: list[NBool] = []
    if segment.test == TEST_LABEL:
        parts.append(NLabelIs(segment.label))
    parts.extend(normalize(qual) for qual in segment.qualifiers)
    if not parts:
        return None
    out = parts[0]
    for part in parts[1:]:
        out = NAnd(out, part)
    return out


def _merge_or_append(steps: list[NStep], step: NSelf) -> None:
    """Apply the ε-merging rule: ε[q1]/ε[q2] -> ε[q1 ∧ q2]."""
    if steps and isinstance(steps[-1], NSelf):
        previous = steps.pop()
        steps.append(NSelf(NAnd(previous.qualifier, step.qualifier)))
    else:
        steps.append(step)


def _append_self(steps: tuple[NStep, ...], qualifier: NBool) -> tuple[NStep, ...]:
    """Append ``ε[qualifier]`` to a step tuple, merging if possible."""
    out = list(steps)
    _merge_or_append(out, NSelf(qualifier))
    return tuple(out)


__all__ = [
    "normalize",
    "normalize_path",
    "NBool",
    "NStep",
    "NLabelIs",
    "NTextIs",
    "NAnd",
    "NOr",
    "NNot",
    "NExists",
    "NSelf",
    "NWildcard",
    "NDescendant",
]
