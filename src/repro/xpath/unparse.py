"""Rendering queries back to text (debugging, reporting, round-trips).

``unparse_bool`` renders the surface AST; ``unparse_normalized`` renders
the β-normal form in the paper's notation (``ε[//ε[label() = stock ∧
*/ε[...]]]``), which is what DESIGN.md and the tests quote.
"""

from __future__ import annotations

from repro.xpath.ast import (
    AXIS_DESC,
    AXIS_SELF,
    TEST_LABEL,
    TEST_SELF,
    BAnd,
    BLabelEq,
    BNot,
    BOr,
    BPath,
    BTextEq,
    BoolExpr,
    Path,
)
from repro.xpath.normalize import (
    NAnd,
    NBool,
    NDescendant,
    NExists,
    NLabelIs,
    NNot,
    NOr,
    NSelf,
    NStep,
    NTextIs,
    NWildcard,
)


def unparse_bool(expr: BoolExpr, top_level: bool = True) -> str:
    """Render a surface AST back to query text."""
    text = _bool_text(expr)
    return f"[{text}]" if top_level else text


def _bool_text(expr: BoolExpr) -> str:
    if isinstance(expr, BAnd):
        return f"({_bool_text(expr.left)} and {_bool_text(expr.right)})"
    if isinstance(expr, BOr):
        return f"({_bool_text(expr.left)} or {_bool_text(expr.right)})"
    if isinstance(expr, BNot):
        return f"not({_bool_text(expr.operand)})"
    if isinstance(expr, BLabelEq):
        return f"label() = {expr.label}"
    if isinstance(expr, BPath):
        return _path_text(expr.path) or "."
    if isinstance(expr, BTextEq):
        path = _path_text(expr.path)
        lead = f"{path}/" if path else ""
        return f'{lead}text() = "{expr.value}"'
    raise TypeError(f"not a BoolExpr: {expr!r}")


def _path_text(path: Path) -> str:
    pieces: list[str] = []
    for index, segment in enumerate(path.segments):
        if segment.axis == AXIS_DESC:
            pieces.append("//")
        elif segment.axis == AXIS_SELF:
            pieces.append("/")
        elif index > 0:
            pieces.append("/")
        if segment.test == TEST_LABEL:
            pieces.append(segment.label or "")
        elif segment.test == TEST_SELF:
            pieces.append(".")
        else:
            pieces.append("*")
        for qualifier in segment.qualifiers:
            pieces.append(f"[{_bool_text(qualifier)}]")
    return "".join(pieces)


def unparse_normalized(expr: NBool) -> str:
    """Render a normalized query in the paper's ε/*-step notation."""
    if isinstance(expr, NAnd):
        return f"{unparse_normalized(expr.left)} ∧ {unparse_normalized(expr.right)}"
    if isinstance(expr, NOr):
        return f"{unparse_normalized(expr.left)} ∨ {unparse_normalized(expr.right)}"
    if isinstance(expr, NNot):
        return f"¬({unparse_normalized(expr.operand)})"
    if isinstance(expr, NLabelIs):
        return f"label() = {expr.label}"
    if isinstance(expr, NTextIs):
        return f'text() = "{expr.value}"'
    if isinstance(expr, NExists):
        return _steps_text(expr.steps)
    raise TypeError(f"not a normalized expression: {expr!r}")


def _steps_text(steps: tuple[NStep, ...]) -> str:
    if not steps:
        return "ε"
    pieces: list[str] = []
    for step in steps:
        if isinstance(step, NSelf):
            pieces.append(f"ε[{unparse_normalized(step.qualifier)}]")
        elif isinstance(step, NWildcard):
            pieces.append("*")
        elif isinstance(step, NDescendant):
            pieces.append("//")
    return "/".join(pieces)


__all__ = ["unparse_bool", "unparse_normalized"]
