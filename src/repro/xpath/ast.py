"""Surface abstract syntax of XBL queries.

A Boolean expression (:class:`BoolExpr`) combines path-existence tests
with ``and`` / ``or`` / ``not`` and two atomic comparisons.  A *path* is
a sequence of :class:`Segment` values; each segment records the axis by
which it is reached (child ``/``, descendant-or-self ``//``, or ``self``
for the head of an absolute path), a node test (label, ``*`` or ``.``)
and any qualifiers ``[q]``.

Notes on the paper's grammar:

* ``p//p`` is represented by giving the right-hand head segment the
  descendant axis (the paper's ``p1//p2 = p1/ // /p2`` abbreviation);
* absolute paths (``/portofolio/...``) address the root element itself
  XPath-style (an implicit document node above the root), so the head
  segment uses the self axis;
* ``p = "str"`` is accepted as sugar for ``p/text() = "str"``, matching
  the paper's Section 4 example ``[/portofolio/broker/name = "Merill
  Lynch"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Axes by which a segment is reached.
AXIS_CHILD = "child"
AXIS_DESC = "descendant-or-self"
AXIS_SELF = "self"

# Node tests.
TEST_LABEL = "label"
TEST_WILDCARD = "wildcard"
TEST_SELF = "self"


@dataclass(frozen=True)
class Segment:
    """One step of a path: axis, node test and qualifiers."""

    axis: str
    test: str
    label: Optional[str] = None
    qualifiers: tuple["BoolExpr", ...] = ()

    def __post_init__(self) -> None:
        if self.axis not in (AXIS_CHILD, AXIS_DESC, AXIS_SELF):
            raise ValueError(f"unknown axis {self.axis!r}")
        if self.test not in (TEST_LABEL, TEST_WILDCARD, TEST_SELF):
            raise ValueError(f"unknown node test {self.test!r}")
        if (self.test == TEST_LABEL) != (self.label is not None):
            raise ValueError("label tests (and only them) carry a label")


@dataclass(frozen=True)
class Path:
    """A (possibly empty) sequence of segments; empty means ``ε`` (self)."""

    segments: tuple[Segment, ...] = ()

    def is_epsilon(self) -> bool:
        """True for the empty path ``ε``."""
        return not self.segments


class BoolExpr:
    """Marker base class for Boolean expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class BPath(BoolExpr):
    """Existence test ``p``: true iff some node is reachable via ``p``."""

    path: Path


@dataclass(frozen=True)
class BTextEq(BoolExpr):
    """``p/text() = 'str'``: some node reached via ``p`` has text ``str``."""

    path: Path
    value: str


@dataclass(frozen=True)
class BLabelEq(BoolExpr):
    """``label() = A``: the context node's label equals ``A``."""

    label: str


@dataclass(frozen=True)
class BNot(BoolExpr):
    """Negation ``not q``."""

    operand: BoolExpr


@dataclass(frozen=True)
class BAnd(BoolExpr):
    """Conjunction ``q1 and q2`` (binary, as in the paper)."""

    left: BoolExpr
    right: BoolExpr


@dataclass(frozen=True)
class BOr(BoolExpr):
    """Disjunction ``q1 or q2`` (binary, as in the paper)."""

    left: BoolExpr
    right: BoolExpr


def conjoin(exprs: list[BoolExpr]) -> BoolExpr:
    """Left-associated conjunction of a non-empty list."""
    if not exprs:
        raise ValueError("conjoin needs at least one expression")
    out = exprs[0]
    for expr in exprs[1:]:
        out = BAnd(out, expr)
    return out


__all__ = [
    "AXIS_CHILD",
    "AXIS_DESC",
    "AXIS_SELF",
    "TEST_LABEL",
    "TEST_WILDCARD",
    "TEST_SELF",
    "Segment",
    "Path",
    "BoolExpr",
    "BPath",
    "BTextEq",
    "BLabelEq",
    "BNot",
    "BAnd",
    "BOr",
    "conjoin",
]
