"""Boolean XPath (the paper's ``XBL`` fragment).

The class of queries (paper, Section 2.2)::

    q := p | p/text() = str | label() = A | not q | q and q | q or q
    p := . | A | * | p//p | p/p | p[q]

This package provides the full front-end pipeline:

* :mod:`repro.xpath.ast` -- the surface abstract syntax;
* :mod:`repro.xpath.parser` -- a tokenizer + recursive-descent parser for
  the textual form (both ASCII ``and/or/not`` and the paper's
  ``∧ ∨ ¬`` are accepted);
* :mod:`repro.xpath.normalize` -- rewriting into the β-normal form
  ``β1/…/βn`` with ``βi ∈ {ε, *, //, ε[q']}`` (Section 2.2);
* :mod:`repro.xpath.qlist` -- compilation of a normalized query into
  ``QList(q)``, the topologically-ordered list of sub-queries that the
  distributed evaluator interprets.

The convenience entry point :func:`compile_query` runs the whole
pipeline: text -> AST -> normal form -> ``QList``.
"""

from repro.xpath.ast import (
    BAnd,
    BLabelEq,
    BNot,
    BOr,
    BPath,
    BTextEq,
    BoolExpr,
    Path,
    Segment,
    AXIS_CHILD,
    AXIS_DESC,
    AXIS_SELF,
    TEST_LABEL,
    TEST_SELF,
    TEST_WILDCARD,
)
from repro.xpath.parser import parse_query, QueryParseError
from repro.xpath.normalize import (
    NAnd,
    NBool,
    NDescendant,
    NExists,
    NLabelIs,
    NNot,
    NOr,
    NSelf,
    NTextIs,
    NWildcard,
    normalize,
)
from repro.xpath.qlist import (
    QList,
    QEntry,
    build_qlist,
    OP_AND,
    OP_CHILD,
    OP_DESC,
    OP_EPSILON,
    OP_LABEL_IS,
    OP_NOT,
    OP_OR,
    OP_SELF_QUAL,
    OP_SELF_SEQ,
    OP_TEXT_IS,
)
from repro.xpath.unparse import unparse_bool, unparse_normalized
from repro.xpath.denotational import eval_bool, eval_path, selected_nodes


def compile_query(text: str) -> QList:
    """Parse, normalize and compile a textual XBL query into a ``QList``."""
    return build_qlist(normalize(parse_query(text)))


__all__ = [
    "compile_query",
    "parse_query",
    "QueryParseError",
    "normalize",
    "build_qlist",
    "QList",
    "QEntry",
    "unparse_bool",
    "unparse_normalized",
    "eval_bool",
    "eval_path",
    "selected_nodes",
    # AST
    "BoolExpr",
    "BAnd",
    "BOr",
    "BNot",
    "BPath",
    "BTextEq",
    "BLabelEq",
    "Path",
    "Segment",
    "AXIS_CHILD",
    "AXIS_DESC",
    "AXIS_SELF",
    "TEST_LABEL",
    "TEST_SELF",
    "TEST_WILDCARD",
    # normal form
    "NBool",
    "NAnd",
    "NOr",
    "NNot",
    "NExists",
    "NLabelIs",
    "NTextIs",
    "NSelf",
    "NWildcard",
    "NDescendant",
    # qlist ops
    "OP_EPSILON",
    "OP_LABEL_IS",
    "OP_TEXT_IS",
    "OP_CHILD",
    "OP_DESC",
    "OP_SELF_QUAL",
    "OP_SELF_SEQ",
    "OP_AND",
    "OP_OR",
    "OP_NOT",
]
