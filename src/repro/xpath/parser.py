"""Tokenizer and recursive-descent parser for textual XBL queries.

Accepted syntax (paper, Section 2.2, plus common ASCII spellings)::

    [//broker[//stock/code/text() = "goog" and not(//stock/code/text() = "yhoo")]]
    [/portofolio/broker/name = "Merill Lynch"]      # = sugar for /text() =
    [//A ∧ //B]                                     # paper's connective glyphs
    [label() = stock]

* outer brackets are optional;
* ``and``/``&&``/``∧``, ``or``/``||``/``∨``, ``not``/``!``/``¬`` are
  interchangeable;
* ``.`` is the empty path ε (self), ``*`` the wildcard;
* absolute paths (leading ``/``) address the root element itself;
* ``text()`` may only terminate a path and must be compared to a string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.xpath.ast import (
    AXIS_CHILD,
    AXIS_DESC,
    AXIS_SELF,
    TEST_LABEL,
    TEST_SELF,
    TEST_WILDCARD,
    BAnd,
    BLabelEq,
    BNot,
    BOr,
    BPath,
    BTextEq,
    BoolExpr,
    Path,
    Segment,
)


class QueryParseError(ValueError):
    """Raised on syntactically invalid queries."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_PUNCT = ("//", "&&", "||", "/", "*", "[", "]", "(", ")", "=", ".", "!")
_GLYPHS = {"∧": "&&", "∨": "||", "¬": "!"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'name' | 'string' | punctuation literal
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch in _GLYPHS:
            tokens.append(_Token(_GLYPHS[ch], _GLYPHS[ch], index))
            index += 1
            continue
        matched = False
        for punct in _PUNCT:
            if text.startswith(punct, index):
                tokens.append(_Token(punct, punct, index))
                index += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch in ("'", '"'):
            end = text.find(ch, index + 1)
            if end < 0:
                raise QueryParseError("unterminated string literal", index)
            tokens.append(_Token("string", text[index + 1 : end], index))
            index = end + 1
            continue
        if ch.isalnum() or ch == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] in "_-"):
                index += 1
            tokens.append(_Token("name", text[start:index], start))
            continue
        raise QueryParseError(f"unexpected character {ch!r}", index)
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token], source_length: int) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source_length = source_length

    # -- token helpers ------------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of query", self._source_length)
        self._pos += 1
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._pos += 1
            return token
        return None

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            where = token.position if token else self._source_length
            found = token.kind if token else "end of query"
            raise QueryParseError(f"expected {kind!r}, found {found}", where)
        self._pos += 1
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "name" and token.value == word

    # -- grammar -------------------------------------------------------------
    def parse(self) -> BoolExpr:
        if self._accept("["):
            expr = self.bool_expr()
            self._expect("]")
        else:
            expr = self.bool_expr()
        trailing = self._peek()
        if trailing is not None:
            raise QueryParseError("trailing input after query", trailing.position)
        return expr

    def bool_expr(self) -> BoolExpr:
        return self._or_expr()

    def _or_expr(self) -> BoolExpr:
        left = self._and_expr()
        while self._accept("||") or (self._at_keyword("or") and self._next()):
            left = BOr(left, self._and_expr())
        return left

    def _and_expr(self) -> BoolExpr:
        left = self._not_expr()
        while self._accept("&&") or (self._at_keyword("and") and self._next()):
            left = BAnd(left, self._not_expr())
        return left

    def _not_expr(self) -> BoolExpr:
        if self._accept("!") or (self._at_keyword("not") and self._next()):
            return BNot(self._not_expr())
        return self._primary()

    def _primary(self) -> BoolExpr:
        if self._accept("("):
            expr = self.bool_expr()
            self._expect(")")
            return expr
        if self._is_function_call("label"):
            self._consume_function("label")
            self._expect("=")
            token = self._next()
            if token.kind not in ("name", "string"):
                raise QueryParseError("label() must be compared to a name", token.position)
            return BLabelEq(token.value)
        return self._path_atom()

    def _is_function_call(self, name: str) -> bool:
        first, second, third = self._peek(), self._peek(1), self._peek(2)
        return (
            first is not None
            and first.kind == "name"
            and first.value == name
            and second is not None
            and second.kind == "("
            and third is not None
            and third.kind == ")"
        )

    def _consume_function(self, name: str) -> None:
        self._next()  # name
        self._next()  # (
        self._next()  # )

    def _path_atom(self) -> BoolExpr:
        path, text_axis = self._path()
        if text_axis is not None:
            # An explicit text() tail: comparison is mandatory.
            self._expect("=")
            value = self._string_value()
            if text_axis == AXIS_DESC:
                path = Path(path.segments + (Segment(AXIS_DESC, TEST_SELF),))
            return BTextEq(path, value)
        if self._accept("="):
            # Sugar: p = "str"  ==  p/text() = "str".
            return BTextEq(path, self._string_value())
        return BPath(path)

    def _string_value(self) -> str:
        token = self._next()
        if token.kind not in ("string", "name"):
            raise QueryParseError("expected a comparison value", token.position)
        return token.value

    def _path(self) -> tuple[Path, Optional[str]]:
        """Parse a path; returns (path, axis-of-text()-tail or None)."""
        if self._accept("//"):
            head_axis = AXIS_DESC
        elif self._accept("/"):
            head_axis = AXIS_SELF
        else:
            head_axis = AXIS_CHILD

        segments: list[Segment] = []
        axis = head_axis
        while True:
            if self._is_function_call("text"):
                self._consume_function("text")
                if not segments and axis == AXIS_CHILD and head_axis == AXIS_CHILD:
                    # Bare ``text() = str`` tests the context node itself.
                    return Path(()), AXIS_SELF_TEXT
                return Path(tuple(segments)), axis
            segments.append(self._segment(axis))
            if self._accept("//"):
                axis = AXIS_DESC
            elif self._accept("/"):
                axis = AXIS_CHILD
            else:
                return Path(tuple(segments)), None

    def _segment(self, axis: str) -> Segment:
        token = self._next()
        if token.kind == ".":
            test, label = TEST_SELF, None
        elif token.kind == "*":
            test, label = TEST_WILDCARD, None
        elif token.kind == "name":
            test, label = TEST_LABEL, token.value
        else:
            raise QueryParseError(f"expected a path step, found {token.kind!r}", token.position)
        qualifiers: list[BoolExpr] = []
        while self._accept("["):
            qualifiers.append(self.bool_expr())
            self._expect("]")
        return Segment(axis, test, label, tuple(qualifiers))


#: Sentinel axis marking a bare ``text() = str`` (test on the context node).
AXIS_SELF_TEXT = "self-text"


def parse_query(text: str) -> BoolExpr:
    """Parse a textual XBL query into its surface AST."""
    if not text or not text.strip():
        raise QueryParseError("empty query", 0)
    parser = _Parser(_tokenize(text), len(text))
    return parser.parse()


__all__ = ["parse_query", "QueryParseError"]
