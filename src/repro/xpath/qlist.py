"""``QList(q)``: the topologically-ordered list of sub-queries.

The distributed evaluator does not interpret the query AST directly; it
interprets a flat list of sub-query entries, each referring to earlier
entries by index -- exactly the paper's ``QList(q)`` (Section 2.2) and
the case analysis of ``Procedure bottomUp`` (Fig. 3(b)):

====  =================  ========================================
case  entry              value at node ``v``
====  =================  ========================================
c0    ``ε``              true
c1    ``label() = l``    ``label(v) = l``
c2    ``text() = str``   ``text(v) = str``
c3    ``*/qj``           ``CV_v(qj)``        (some child satisfies qj)
c4    ``ε[qj]/qk``       ``V_v(qj) ∧ V_v(qk)``
--    ``ε[qj]``          ``V_v(qj)``         (alias; see Example 2.1's q4)
c5    ``//qj``           ``DV_v(qj)``        (some desc-or-self satisfies)
c6    ``qj ∨ qk``        ``V_v(qj) ∨ V_v(qk)``
c7    ``qj ∧ qk``        ``V_v(qj) ∧ V_v(qk)``
c8    ``¬qj``            ``¬V_v(qj)``
====  =================  ========================================

Entries are hash-consed (common sub-queries share one entry), keeping
``|QList(q)| = O(|q|)``; the answer to the whole query is the value of
the **last** entry.  The builder guarantees the last entry is the root
even under hash-consing by appending an ``ε[qj]`` alias when needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.xpath.normalize import (
    NAnd,
    NBool,
    NDescendant,
    NExists,
    NLabelIs,
    NNot,
    NOr,
    NSelf,
    NStep,
    NTextIs,
    NWildcard,
)

OP_EPSILON = "eps"  # c0: ε
OP_LABEL_IS = "label"  # c1: label() = l
OP_TEXT_IS = "text"  # c2: text() = str
OP_CHILD = "child"  # c3: */qj
OP_SELF_SEQ = "selfseq"  # c4: ε[qj]/qk
OP_SELF_QUAL = "self"  # ε[qj] alias (value = V(qj))
OP_DESC = "desc"  # c5: //qj
OP_OR = "or"  # c6
OP_AND = "and"  # c7
OP_NOT = "not"  # c8

_ARITY = {
    OP_EPSILON: 0,
    OP_LABEL_IS: 0,
    OP_TEXT_IS: 0,
    OP_CHILD: 1,
    OP_SELF_QUAL: 1,
    OP_DESC: 1,
    OP_NOT: 1,
    OP_SELF_SEQ: 2,
    OP_OR: 2,
    OP_AND: 2,
}


@dataclass(frozen=True)
class QEntry:
    """One sub-query: an operator, an optional payload, operand indices."""

    op: str
    value: Optional[str] = None
    args: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in _ARITY:
            raise ValueError(f"unknown QList operator {self.op!r}")
        if len(self.args) != _ARITY[self.op]:
            raise ValueError(f"{self.op} takes {_ARITY[self.op]} operand(s)")
        needs_value = self.op in (OP_LABEL_IS, OP_TEXT_IS)
        if needs_value != (self.value is not None):
            raise ValueError(f"payload mismatch for {self.op}")

    def describe(self, prefix: str = "q") -> str:
        """Human-readable rendering, paper-style (``q5 = */q4``)."""
        refs = [f"{prefix}{arg + 1}" for arg in self.args]
        if self.op == OP_EPSILON:
            return "ε"
        if self.op == OP_LABEL_IS:
            return f"label() = {self.value}"
        if self.op == OP_TEXT_IS:
            return f'text() = "{self.value}"'
        if self.op == OP_CHILD:
            return f"*/{refs[0]}"
        if self.op == OP_SELF_QUAL:
            return f"ε[{refs[0]}]"
        if self.op == OP_SELF_SEQ:
            return f"ε[{refs[0]}]/{refs[1]}"
        if self.op == OP_DESC:
            return f"//{refs[0]}"
        if self.op == OP_OR:
            return f"{refs[0]} ∨ {refs[1]}"
        if self.op == OP_AND:
            return f"{refs[0]} ∧ {refs[1]}"
        return f"¬{refs[0]}"


class QList:
    """An immutable, topologically ordered sub-query list.

    ``qlist[i]`` is the i-th entry; every operand index of entry *i* is
    ``< i``; the last entry is the whole query.  ``len(qlist)`` is the
    paper's ``|QList(q)|`` -- the query-size parameter of Experiments 1-3.
    """

    def __init__(self, entries: list[QEntry], source: Optional[str] = None) -> None:
        for index, entry in enumerate(entries):
            if any(arg >= index or arg < 0 for arg in entry.args):
                raise ValueError(f"entry {index} is not topologically ordered")
        self._entries = tuple(entries)
        self.source = source

    @property
    def entries(self) -> tuple[QEntry, ...]:
        """The entry tuple (read-only)."""
        return self._entries

    @property
    def answer_index(self) -> int:
        """Index of the entry whose value is the query answer (the last)."""
        return len(self._entries) - 1

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> QEntry:
        return self._entries[index]

    def __iter__(self) -> Iterator[QEntry]:
        return iter(self._entries)

    def pretty(self) -> str:
        """Multi-line rendering in the paper's ``qi = ...`` style."""
        return "\n".join(
            f"q{index + 1} = {entry.describe()}" for index, entry in enumerate(self._entries)
        )

    # ------------------------------------------------------------------
    # Wire format (what the coordinator broadcasts to the sites)
    # ------------------------------------------------------------------
    def to_obj(self) -> list:
        """JSON-able representation: ``[[op, value, [args...]], ...]``."""
        return [[e.op, e.value, list(e.args)] for e in self._entries]

    @classmethod
    def from_obj(cls, obj: list, source: Optional[str] = None) -> "QList":
        """Inverse of :meth:`to_obj`."""
        entries = [QEntry(op, value=value, args=tuple(args)) for op, value, args in obj]
        return cls(entries, source=source)

    def wire_bytes(self) -> int:
        """Byte size of the broadcast message carrying this query."""
        import json

        return len(json.dumps(self.to_obj(), separators=(",", ":")).encode())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QList |q|={len(self)} source={self.source!r}>"


class _Builder:
    """Hash-consing accumulator for QList entries."""

    def __init__(self) -> None:
        self.entries: list[QEntry] = []
        self._interned: dict[QEntry, int] = {}

    def intern(self, entry: QEntry) -> int:
        existing = self._interned.get(entry)
        if existing is not None:
            return existing
        index = len(self.entries)
        self.entries.append(entry)
        self._interned[entry] = index
        return index

    # -- Boolean expressions -------------------------------------------------
    def compile_bool(self, expr: NBool) -> int:
        if isinstance(expr, NLabelIs):
            return self.intern(QEntry(OP_LABEL_IS, value=expr.label))
        if isinstance(expr, NTextIs):
            return self.intern(QEntry(OP_TEXT_IS, value=expr.value))
        if isinstance(expr, NAnd):
            left = self.compile_bool(expr.left)
            right = self.compile_bool(expr.right)
            return self.intern(QEntry(OP_AND, args=(left, right)))
        if isinstance(expr, NOr):
            left = self.compile_bool(expr.left)
            right = self.compile_bool(expr.right)
            return self.intern(QEntry(OP_OR, args=(left, right)))
        if isinstance(expr, NNot):
            return self.intern(QEntry(OP_NOT, args=(self.compile_bool(expr.operand),)))
        if isinstance(expr, NExists):
            return self.compile_path(expr.steps)
        raise TypeError(f"not a normalized expression: {expr!r}")

    # -- Paths ----------------------------------------------------------------
    def compile_path(self, steps: tuple[NStep, ...]) -> int:
        """Compile right-to-left: each step wraps its continuation."""
        cont: Optional[int] = None
        for step in reversed(steps):
            if isinstance(step, NSelf):
                qualifier = self.compile_bool(step.qualifier)
                if cont is None:
                    cont = self.intern(QEntry(OP_SELF_QUAL, args=(qualifier,)))
                else:
                    cont = self.intern(QEntry(OP_SELF_SEQ, args=(qualifier, cont)))
            elif isinstance(step, NWildcard):
                if cont is None:
                    cont = self.intern(QEntry(OP_EPSILON))
                cont = self.intern(QEntry(OP_CHILD, args=(cont,)))
            elif isinstance(step, NDescendant):
                if cont is None:
                    cont = self.intern(QEntry(OP_EPSILON))
                cont = self.intern(QEntry(OP_DESC, args=(cont,)))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown step {step!r}")
        if cont is None:  # the empty path ε
            cont = self.intern(QEntry(OP_EPSILON))
        return cont


def append_shifted(entries: list[QEntry], qlist: QList) -> int:
    """Append ``qlist``'s entries with operand indices offset in place.

    The one primitive behind multi-query combination: operand indices
    only ever reference earlier entries of the same query, so shifting
    them by the current length keeps the growing list topologically
    ordered.  Returns the offset the appended query starts at (its
    answer entry is ``offset + qlist.answer_index``).  Shared by
    :func:`concatenate_qlists` and the batch planner
    (:func:`repro.core.plan.plan_batch`).
    """
    offset = len(entries)
    for entry in qlist:
        entries.append(
            QEntry(entry.op, value=entry.value, args=tuple(arg + offset for arg in entry.args))
        )
    return offset


def concatenate_qlists(qlists: list[QList]) -> tuple[QList, list[int]]:
    """Concatenate several QLists into one, preserving topology.

    Returns the combined list plus, per input query, the index of its
    answer entry inside the combination.  Evaluating the combined list
    computes every input query in a *single* tree traversal.  No
    deduplication is performed -- the batch planner
    (:func:`repro.core.plan.plan_batch`) builds on the same primitive
    and adds duplicate collapsing and per-query segments on top.
    """
    entries: list[QEntry] = []
    answer_indices: list[int] = []
    for qlist in qlists:
        offset = append_shifted(entries, qlist)
        answer_indices.append(offset + qlist.answer_index)
    sources = [qlist.source or "?" for qlist in qlists]
    return QList(entries, source=" + ".join(sources)), answer_indices


def build_qlist(expr: NBool, source: Optional[str] = None) -> QList:
    """Compile a normalized query into its ``QList``.

    The answer entry is guaranteed to be last: if hash-consing resolved
    the root to an earlier entry, an ``ε[qj]`` alias is appended (this is
    also how the paper's Example 2.1 ends, with ``q10 = ε[q9]``).
    """
    builder = _Builder()
    root = builder.compile_bool(expr)
    if root != len(builder.entries) - 1:
        # Append directly (not via intern): an identical alias may already
        # exist at a lower index, which would break the answer-is-last
        # invariant.
        builder.entries.append(QEntry(OP_SELF_QUAL, args=(root,)))
    return QList(builder.entries, source=source)


__all__ = [
    "QList",
    "QEntry",
    "build_qlist",
    "append_shifted",
    "concatenate_qlists",
    "OP_EPSILON",
    "OP_LABEL_IS",
    "OP_TEXT_IS",
    "OP_CHILD",
    "OP_SELF_QUAL",
    "OP_SELF_SEQ",
    "OP_DESC",
    "OP_OR",
    "OP_AND",
    "OP_NOT",
]
