"""A denotational (set-based) reference semantics for XBL.

This evaluator interprets the *surface* AST directly -- no
normalization, no QList, no V/CV/DV vectors -- by computing node sets
for paths exactly as Section 2.2 defines ``val(q, v)``:

* a path denotes the set of nodes reachable from the context node;
* ``p/text() = str`` holds iff some reached node carries that text;
* ``label() = A`` tests the context node; connectives are Boolean.

Because it shares **no code** with the production pipeline
(normalize -> QList -> bottomUp/evalST), it serves as an independent
second oracle: `tests/test_denotational.py` checks that the two
semantics agree on random trees and queries, which would expose any
systematic bug in the normalization rules themselves.

Only whole (unfragmented) trees are supported -- this is a specification,
not an engine.
"""

from __future__ import annotations

from typing import Iterable

from repro.xmltree.node import XMLNode
from repro.xpath.ast import (
    AXIS_DESC,
    AXIS_SELF,
    TEST_LABEL,
    TEST_SELF,
    BAnd,
    BLabelEq,
    BNot,
    BOr,
    BPath,
    BTextEq,
    BoolExpr,
    Path,
    Segment,
)


def _check_whole(node: XMLNode) -> None:
    if node.is_virtual:
        raise ValueError("the denotational semantics is defined on whole trees only")


def _descendants_or_self(node: XMLNode) -> Iterable[XMLNode]:
    return node.iter_subtree()


def eval_path(path: Path, context: XMLNode) -> list[XMLNode]:
    """The node set denoted by ``path`` at ``context`` (document order).

    Mirrors the committed interpretation of the surface syntax:
    ``child::A`` moves to children; ``//`` is descendant-or-self
    followed by the next segment's own move; absolute heads (axis
    ``self``) and ``.`` segments do not move.
    """
    _check_whole(context)
    current: list[XMLNode] = [context]
    for segment in path.segments:
        current = _apply_segment(segment, current)
        if not current:
            break
    return current


def _apply_segment(segment: Segment, nodes: list[XMLNode]) -> list[XMLNode]:
    # Axis part 1: '//' expands to descendants-or-self first.
    if segment.axis == AXIS_DESC:
        expanded: list[XMLNode] = []
        seen: set[int] = set()
        for node in nodes:
            for descendant in _descendants_or_self(node):
                if descendant.node_id not in seen and not descendant.is_virtual:
                    seen.add(descendant.node_id)
                    expanded.append(descendant)
        nodes = expanded

    # Axis part 2: the move.  Self tests and absolute heads stay put;
    # anything else steps to children.
    if segment.test == TEST_SELF or segment.axis == AXIS_SELF:
        candidates = nodes
    else:
        candidates = []
        seen = set()
        for node in nodes:
            for child in node.children:
                if child.node_id not in seen and not child.is_virtual:
                    seen.add(child.node_id)
                    candidates.append(child)

    # Node test.
    if segment.test == TEST_LABEL:
        candidates = [node for node in candidates if node.label == segment.label]

    # Qualifiers filter the candidates.
    for qualifier in segment.qualifiers:
        candidates = [node for node in candidates if eval_bool(qualifier, node)]
    return candidates


def eval_bool(expr: BoolExpr, context: XMLNode) -> bool:
    """``val(q, v)``: the truth of a Boolean expression at a node."""
    _check_whole(context)
    if isinstance(expr, BAnd):
        return eval_bool(expr.left, context) and eval_bool(expr.right, context)
    if isinstance(expr, BOr):
        return eval_bool(expr.left, context) or eval_bool(expr.right, context)
    if isinstance(expr, BNot):
        return not eval_bool(expr.operand, context)
    if isinstance(expr, BLabelEq):
        return context.label == expr.label
    if isinstance(expr, BPath):
        return bool(eval_path(expr.path, context))
    if isinstance(expr, BTextEq):
        return any(node.text == expr.value for node in eval_path(expr.path, context))
    raise TypeError(f"not a BoolExpr: {expr!r}")


def selected_nodes(expr: BoolExpr, root: XMLNode) -> list[XMLNode]:
    """Node-set semantics of a selection query (path or union of paths)."""
    if isinstance(expr, BPath):
        return eval_path(expr.path, root)
    if isinstance(expr, BOr):
        left = selected_nodes(expr.left, root)
        right = selected_nodes(expr.right, root)
        seen = {node.node_id for node in left}
        return left + [node for node in right if node.node_id not in seen]
    raise ValueError("selection queries must be a path or a union of paths")


def node_index_path(node: XMLNode) -> tuple[int, ...]:
    """Child-index path from the tree root (the selection wire format)."""
    indices: list[int] = []
    current = node
    while current.parent is not None:
        indices.append(current.parent.children.index(current))
        current = current.parent
    return tuple(reversed(indices))


__all__ = ["eval_bool", "eval_path", "selected_nodes", "node_index_path"]
