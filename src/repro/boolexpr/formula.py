"""Immutable Boolean formulas with canonicalizing constructors.

A formula is one of:

* :class:`Const` -- the singletons :data:`TRUE` / :data:`FALSE`;
* :class:`Var` -- a free variable ``(owner, kind, index)``.  In the
  paper's notation, the variables introduced for virtual node ``F2`` and
  sub-query ``q8`` are ``x8`` (``kind='V'``), ``cx8`` (``'CV'``) and
  ``dx8`` (``'DV'``); here they are ``Var('F2', 'V', 8)`` etc.;
* :class:`Not` / :class:`And` / :class:`Or` -- connectives.  ``And`` and
  ``Or`` are n-ary.

Use the smart constructors :func:`make_and`, :func:`make_or` and
:func:`make_not` (or the convenience operators ``&``, ``|``, ``~``):
they flatten nested connectives, fold constants, deduplicate operands,
absorb complementary literals and order operands canonically, so that
equal Boolean functions built the same way compare equal and -- more
importantly for the paper's bounds -- formula size stays proportional to
the number of distinct variables, i.e. ``O(card(F_j))`` per vector entry.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

Obj = Union[bool, list]  # the JSON-able wire representation


class Formula:
    """Base class of all formulas.  Instances are immutable and hashable."""

    __slots__ = ("_key", "_hash", "_size")

    # -- canonical ordering -------------------------------------------------
    def sort_key(self) -> tuple:
        """A total order on formulas used to canonicalize operand tuples."""
        key = getattr(self, "_key", None)
        if key is None:
            key = self._compute_key()
            self._key = key
        return key

    def _compute_key(self) -> tuple:
        raise NotImplementedError

    # -- measurements --------------------------------------------------------
    def size(self) -> int:
        """Number of nodes in the formula tree (wire-size unit)."""
        raise NotImplementedError

    def variables(self) -> frozenset["Var"]:
        """The set of free variables."""
        raise NotImplementedError

    def is_ground(self) -> bool:
        """True when the formula contains no variables."""
        return not self.variables()

    # -- evaluation / substitution -------------------------------------------
    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        """Evaluate under a total assignment; raises ``KeyError`` on gaps."""
        raise NotImplementedError

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        """Replace variables by formulas, re-canonicalizing on the way up."""
        raise NotImplementedError

    # -- wire format -----------------------------------------------------------
    def to_obj(self) -> Obj:
        """JSON-able representation (see :func:`formula_from_obj`)."""
        raise NotImplementedError

    # -- operators --------------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return make_and(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return make_or(self, other)

    def __invert__(self) -> "Formula":
        return make_not(self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Formula):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __hash__(self) -> int:
        if getattr(self, "_hash", None) is None:
            self._hash = hash(self.sort_key())
        return self._hash


class Const(Formula):
    """A Boolean constant; use the singletons :data:`TRUE` / :data:`FALSE`."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value
        self._hash = None

    def _compute_key(self) -> tuple:
        return (0, self.value)

    def size(self) -> int:
        return 1

    def variables(self) -> frozenset["Var"]:
        return frozenset()

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return self.value

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return self

    def to_obj(self) -> Obj:
        return self.value

    def __repr__(self) -> str:
        return "1" if self.value else "0"


#: The true constant.
TRUE = Const(True)
#: The false constant.
FALSE = Const(False)


class Var(Formula):
    """A free variable identified by ``(owner, kind, index)``.

    ``owner`` names the virtual node / fragment that introduced the
    variable, ``kind`` is one of ``'V'``, ``'CV'``, ``'DV'`` (which of the
    three result vectors it refers to) and ``index`` is the position in
    ``QList(q)``.
    """

    __slots__ = ("owner", "kind", "index")

    _PREFIX = {"V": "", "CV": "c", "DV": "d"}

    def __init__(self, owner: str, kind: str, index: int) -> None:
        if kind not in ("V", "CV", "DV"):
            raise ValueError(f"unknown vector kind {kind!r}")
        self.owner = owner
        self.kind = kind
        self.index = index
        self._hash = None

    def _compute_key(self) -> tuple:
        return (1, self.owner, self.kind, self.index)

    def size(self) -> int:
        return 1

    def variables(self) -> frozenset["Var"]:
        return frozenset((self,))

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return env[self]

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return env.get(self, self)

    def to_obj(self) -> Obj:
        return ["var", self.owner, self.kind, self.index]

    def __repr__(self) -> str:
        # Matches the paper's naming: x8 / cx8 / dx8 for fragment F2, q8.
        return f"{self._PREFIX[self.kind]}{self.owner}.{self.index}"


class Not(Formula):
    """Negation.  Build through :func:`make_not`."""

    __slots__ = ("child",)

    def __init__(self, child: Formula) -> None:
        self.child = child
        self._hash = None

    def _compute_key(self) -> tuple:
        return (2, self.child.sort_key())

    def size(self) -> int:
        return 1 + self.child.size()

    def variables(self) -> frozenset["Var"]:
        return self.child.variables()

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return not self.child.evaluate(env)

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return make_not(self.child.substitute(env))

    def to_obj(self) -> Obj:
        return ["not", self.child.to_obj()]

    def __repr__(self) -> str:
        return f"~{self.child!r}"


class _NAry(Formula):
    """Shared implementation of the two n-ary connectives."""

    __slots__ = ("children",)
    _TAG = ""
    _RANK = -1
    _JOIN = ""

    def __init__(self, children: tuple[Formula, ...]) -> None:
        if len(children) < 2:
            raise ValueError(f"{type(self).__name__} needs at least two operands")
        self.children = children
        self._hash = None

    def _compute_key(self) -> tuple:
        return (self._RANK, tuple(child.sort_key() for child in self.children))

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def variables(self) -> frozenset["Var"]:
        out: frozenset[Var] = frozenset()
        for child in self.children:
            out = out | child.variables()
        return out

    def to_obj(self) -> Obj:
        return [self._TAG, [child.to_obj() for child in self.children]]

    def __repr__(self) -> str:
        return "(" + self._JOIN.join(repr(child) for child in self.children) + ")"


class And(_NAry):
    """Conjunction.  Build through :func:`make_and`."""

    __slots__ = ()
    _TAG = "and"
    _RANK = 3
    _JOIN = " & "

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return all(child.evaluate(env) for child in self.children)

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return make_and(*(child.substitute(env) for child in self.children))


class Or(_NAry):
    """Disjunction.  Build through :func:`make_or`."""

    __slots__ = ()
    _TAG = "or"
    _RANK = 4
    _JOIN = " | "

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return any(child.evaluate(env) for child in self.children)

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return make_or(*(child.substitute(env) for child in self.children))


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def make_not(formula: Formula) -> Formula:
    """Canonical negation: folds constants and double negation."""
    if formula is TRUE:
        return FALSE
    if formula is FALSE:
        return TRUE
    if isinstance(formula, Const):  # non-singleton constants, defensively
        return FALSE if formula.value else TRUE
    if isinstance(formula, Not):
        return formula.child
    return Not(formula)


def _canonical_operands(
    operands: Iterable[Formula],
    flatten_type: type,
    identity: Const,
    absorbing: Const,
) -> Optional[list[Formula]]:
    """Flatten/dedup/fold operands; None signals the absorbing constant."""
    seen: dict[tuple, Formula] = {}
    stack = list(operands)
    stack.reverse()
    while stack:
        operand = stack.pop()
        if isinstance(operand, Const):
            if operand.value == absorbing.value:
                return None
            continue  # identity element: drop
        if isinstance(operand, flatten_type):
            stack.extend(reversed(operand.children))
            continue
        seen.setdefault(operand.sort_key(), operand)
    # Complement absorption: x op ~x == absorbing.
    for key, operand in seen.items():
        complement = make_not(operand)
        if complement.sort_key() in seen:
            return None
    return sorted(seen.values(), key=Formula.sort_key)


def make_and(*operands: Formula) -> Formula:
    """Canonical conjunction of any number of operands (0 -> TRUE)."""
    flat = _canonical_operands(operands, And, identity=TRUE, absorbing=FALSE)
    if flat is None:
        return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def make_or(*operands: Formula) -> Formula:
    """Canonical disjunction of any number of operands (0 -> FALSE)."""
    flat = _canonical_operands(operands, Or, identity=FALSE, absorbing=TRUE)
    if flat is None:
        return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def const(value: bool) -> Const:
    """The singleton constant for ``value``."""
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

def formula_from_obj(obj: Obj) -> Formula:
    """Inverse of :meth:`Formula.to_obj`.

    The wire format is JSON-able: ``True``/``False`` for constants,
    ``["var", owner, kind, index]``, ``["not", f]``,
    ``["and"|"or", [f, ...]]``.
    """
    if isinstance(obj, bool):
        return const(obj)
    if not isinstance(obj, list) or not obj:
        raise ValueError(f"malformed formula object: {obj!r}")
    tag = obj[0]
    if tag == "var":
        _, owner, kind, index = obj
        return Var(owner, kind, index)
    if tag == "not":
        return make_not(formula_from_obj(obj[1]))
    if tag == "and":
        return make_and(*(formula_from_obj(child) for child in obj[1]))
    if tag == "or":
        return make_or(*(formula_from_obj(child) for child in obj[1]))
    raise ValueError(f"unknown formula tag {tag!r}")


def iter_subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield every node of the formula tree (pre-order)."""
    stack = [formula]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Not):
            stack.append(current.child)
        elif isinstance(current, _NAry):
            stack.extend(current.children)


__all__ = [
    "Formula",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "const",
    "make_not",
    "make_and",
    "make_or",
    "formula_from_obj",
    "iter_subformulas",
]
