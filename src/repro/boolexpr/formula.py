"""Immutable Boolean formulas with canonicalizing, hash-consing constructors.

A formula is one of:

* :class:`Const` -- the singletons :data:`TRUE` / :data:`FALSE`;
* :class:`Var` -- a free variable ``(owner, kind, index)``.  In the
  paper's notation, the variables introduced for virtual node ``F2`` and
  sub-query ``q8`` are ``x8`` (``kind='V'``), ``cx8`` (``'CV'``) and
  ``dx8`` (``'DV'``); here they are ``Var('F2', 'V', 8)`` etc.;
* :class:`Not` / :class:`And` / :class:`Or` -- connectives.  ``And`` and
  ``Or`` are n-ary.

Use the smart constructors :func:`make_and`, :func:`make_or` and
:func:`make_not` (or the convenience operators ``&``, ``|``, ``~``):
they flatten nested connectives, fold constants, deduplicate operands,
absorb complementary literals and order operands canonically, so that
equal Boolean functions built the same way compare equal and -- more
importantly for the paper's bounds -- formula size stays proportional to
the number of distinct variables, i.e. ``O(card(F_j))`` per vector entry.

**Hash-consing.**  Every constructor (smart or raw) interns its result
in a per-class pool, so structurally equal formulas built in one process
are one object.  That turns the partial-evaluation hot loop's costs
from per-occurrence into per-distinct-formula: ``sort_key`` / ``size`` /
``variables`` are each computed once and cached on the instance, pool
hits skip allocation entirely, and downstream memo tables (the equation
solver, the compact triplet codec) key on formulas with cached hashes.
The pools hold weak references, so formulas no longer reachable from
live triplets are garbage-collected normally.  Interning is best-effort
under free-threading -- a rare race can leave two equal instances alive
-- so ``__eq__`` keeps its structural fallback and nothing *requires*
identity for correctness.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union
from weakref import WeakValueDictionary

Obj = Union[bool, list]  # the JSON-able wire representation


class Formula:
    """Base class of all formulas.  Instances are immutable and hashable.

    ``_key`` / ``_hash`` / ``_size`` / ``_vars`` cache the derived
    measurements; with interned instances each is computed at most once
    per *distinct* formula in the process.
    """

    __slots__ = ("_key", "_hash", "_size", "_vars", "__weakref__")

    # -- canonical ordering -------------------------------------------------
    def sort_key(self) -> tuple:
        """A total order on formulas used to canonicalize operand tuples."""
        key = getattr(self, "_key", None)
        if key is None:
            key = self._compute_key()
            self._key = key
        return key

    def _compute_key(self) -> tuple:
        raise NotImplementedError

    # -- measurements --------------------------------------------------------
    def size(self) -> int:
        """Number of nodes in the formula tree (wire-size unit)."""
        size = getattr(self, "_size", None)
        if size is None:
            size = self._compute_size()
            self._size = size
        return size

    def _compute_size(self) -> int:
        raise NotImplementedError

    def variables(self) -> frozenset["Var"]:
        """The set of free variables (computed once, then cached)."""
        vars_ = getattr(self, "_vars", None)
        if vars_ is None:
            vars_ = self._compute_variables()
            self._vars = vars_
        return vars_

    def _compute_variables(self) -> frozenset["Var"]:
        raise NotImplementedError

    def is_ground(self) -> bool:
        """True when the formula contains no variables."""
        return not self.variables()

    # -- evaluation / substitution -------------------------------------------
    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        """Evaluate under a total assignment; raises ``KeyError`` on gaps."""
        raise NotImplementedError

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        """Replace variables by formulas, re-canonicalizing on the way up."""
        raise NotImplementedError

    # -- wire format -----------------------------------------------------------
    def to_obj(self) -> Obj:
        """JSON-able representation (see :func:`formula_from_obj`)."""
        raise NotImplementedError

    # -- operators --------------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return make_and(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return make_or(self, other)

    def __invert__(self) -> "Formula":
        return make_not(self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Formula):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __hash__(self) -> int:
        if getattr(self, "_hash", None) is None:
            self._hash = hash(self.sort_key())
        return self._hash


#: Bootstrap pool for the two constants (filled by the TRUE/FALSE
#: definitions below; ``Const(...)`` afterwards returns the singletons).
_CONST_POOL: dict[bool, "Const"] = {}


class Const(Formula):
    """A Boolean constant; use the singletons :data:`TRUE` / :data:`FALSE`."""

    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "Const":
        value = bool(value)
        existing = _CONST_POOL.get(value)
        if existing is not None:
            return existing
        self = super().__new__(cls)
        self.value = value
        _CONST_POOL[value] = self
        return self

    def __reduce__(self):
        return (Const, (self.value,))

    def _compute_key(self) -> tuple:
        return (0, self.value)

    def _compute_size(self) -> int:
        return 1

    def _compute_variables(self) -> frozenset["Var"]:
        return frozenset()

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return self.value

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return self

    def to_obj(self) -> Obj:
        return self.value

    def __repr__(self) -> str:
        return "1" if self.value else "0"


#: The true constant.
TRUE = Const(True)
#: The false constant.
FALSE = Const(False)

_VAR_POOL: "WeakValueDictionary[tuple, Var]" = WeakValueDictionary()
_NOT_POOL: "WeakValueDictionary[Formula, Not]" = WeakValueDictionary()


class Var(Formula):
    """A free variable identified by ``(owner, kind, index)``.

    ``owner`` names the virtual node / fragment that introduced the
    variable, ``kind`` is one of ``'V'``, ``'CV'``, ``'DV'`` (which of the
    three result vectors it refers to) and ``index`` is the position in
    ``QList(q)``.
    """

    __slots__ = ("owner", "kind", "index")

    _PREFIX = {"V": "", "CV": "c", "DV": "d"}

    def __new__(cls, owner: str, kind: str, index: int) -> "Var":
        key = (owner, kind, index)
        existing = _VAR_POOL.get(key)
        if existing is not None:
            return existing
        if kind not in ("V", "CV", "DV"):
            raise ValueError(f"unknown vector kind {kind!r}")
        self = super().__new__(cls)
        self.owner = owner
        self.kind = kind
        self.index = index
        return _VAR_POOL.setdefault(key, self)

    def __reduce__(self):
        return (Var, (self.owner, self.kind, self.index))

    def _compute_key(self) -> tuple:
        return (1, self.owner, self.kind, self.index)

    def _compute_size(self) -> int:
        return 1

    def _compute_variables(self) -> frozenset["Var"]:
        return frozenset((self,))

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return env[self]

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return env.get(self, self)

    def to_obj(self) -> Obj:
        return ["var", self.owner, self.kind, self.index]

    def __repr__(self) -> str:
        # Matches the paper's naming: x8 / cx8 / dx8 for fragment F2, q8.
        return f"{self._PREFIX[self.kind]}{self.owner}.{self.index}"


class Not(Formula):
    """Negation.  Build through :func:`make_not`."""

    __slots__ = ("child",)

    def __new__(cls, child: Formula) -> "Not":
        existing = _NOT_POOL.get(child)
        if existing is not None:
            return existing
        self = super().__new__(cls)
        self.child = child
        return _NOT_POOL.setdefault(child, self)

    def __reduce__(self):
        return (Not, (self.child,))

    def _compute_key(self) -> tuple:
        return (2, self.child.sort_key())

    def _compute_size(self) -> int:
        return 1 + self.child.size()

    def _compute_variables(self) -> frozenset["Var"]:
        return self.child.variables()

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return not self.child.evaluate(env)

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return make_not(self.child.substitute(env))

    def to_obj(self) -> Obj:
        return ["not", self.child.to_obj()]

    def __repr__(self) -> str:
        return f"~{self.child!r}"


class _NAry(Formula):
    """Shared implementation of the two n-ary connectives."""

    __slots__ = ("children",)
    _TAG = ""
    _RANK = -1
    _JOIN = ""
    #: Per-concrete-class interning pool (set on And / Or below).
    _pool: "WeakValueDictionary[tuple, _NAry]"

    def __new__(cls, children: tuple[Formula, ...]) -> "_NAry":
        children = tuple(children)
        pool = cls._pool
        existing = pool.get(children)
        if existing is not None:
            return existing
        if len(children) < 2:
            raise ValueError(f"{cls.__name__} needs at least two operands")
        self = super().__new__(cls)
        self.children = children
        return pool.setdefault(children, self)

    def __reduce__(self):
        return (type(self), (self.children,))

    def _compute_key(self) -> tuple:
        return (self._RANK, tuple(child.sort_key() for child in self.children))

    def _compute_size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def _compute_variables(self) -> frozenset["Var"]:
        # One mutable set, frozen once -- the repeated
        # ``frozenset | frozenset`` of the pre-interning implementation
        # was quadratic in the number of operands.
        out: set[Var] = set()
        for child in self.children:
            out.update(child.variables())
        return frozenset(out)

    def to_obj(self) -> Obj:
        return [self._TAG, [child.to_obj() for child in self.children]]

    def __repr__(self) -> str:
        return "(" + self._JOIN.join(repr(child) for child in self.children) + ")"


class And(_NAry):
    """Conjunction.  Build through :func:`make_and`."""

    __slots__ = ()
    _TAG = "and"
    _RANK = 3
    _JOIN = " & "
    _pool: "WeakValueDictionary[tuple, And]" = WeakValueDictionary()

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return all(child.evaluate(env) for child in self.children)

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return make_and(*(child.substitute(env) for child in self.children))


class Or(_NAry):
    """Disjunction.  Build through :func:`make_or`."""

    __slots__ = ()
    _TAG = "or"
    _RANK = 4
    _JOIN = " | "
    _pool: "WeakValueDictionary[tuple, Or]" = WeakValueDictionary()

    def evaluate(self, env: Mapping["Var", bool]) -> bool:
        return any(child.evaluate(env) for child in self.children)

    def substitute(self, env: Mapping["Var", "Formula"]) -> "Formula":
        return make_or(*(child.substitute(env) for child in self.children))


def pool_stats() -> dict[str, int]:
    """Approximate live-instance counts of the interning pools."""
    return {
        "var": len(_VAR_POOL),
        "not": len(_NOT_POOL),
        "and": len(And._pool),
        "or": len(Or._pool),
    }


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def make_not(formula: Formula) -> Formula:
    """Canonical negation: folds constants and double negation."""
    if formula is TRUE:
        return FALSE
    if formula is FALSE:
        return TRUE
    if isinstance(formula, Const):  # non-singleton constants, defensively
        return FALSE if formula.value else TRUE
    if isinstance(formula, Not):
        return formula.child
    return Not(formula)


def _canonical_operands(
    operands: Iterable[Formula],
    flatten_type: type,
    identity: Const,
    absorbing: Const,
) -> Optional[list[Formula]]:
    """Flatten/dedup/fold operands; None signals the absorbing constant."""
    seen: dict[tuple, Formula] = {}
    stack = list(operands)
    stack.reverse()
    ordered = True
    saw_not = False
    last_key: Optional[tuple] = None
    while stack:
        operand = stack.pop()
        if isinstance(operand, Const):
            if operand.value == absorbing.value:
                return None
            continue  # identity element: drop
        if isinstance(operand, flatten_type):
            stack.extend(reversed(operand.children))
            continue
        if isinstance(operand, Not):
            saw_not = True
        key = operand.sort_key()
        if key not in seen:
            seen[key] = operand
            if ordered:
                if last_key is not None and key < last_key:
                    ordered = False
                last_key = key
    # Complement absorption: x op ~x == absorbing.  A complementary
    # pair needs a Not among the operands, so the scan is skipped
    # entirely for the (hot) negation-free case; the complement's key
    # is derived without building the complement formula: for a ``Not``
    # it is the child's key, otherwise ``make_not`` would wrap (rank 2).
    if saw_not:
        for operand in seen.values():
            if isinstance(operand, Not):
                complement_key = operand.child.sort_key()
            else:
                complement_key = (2, operand.sort_key())
            if complement_key in seen:
                return None
    flat = list(seen.values())
    if not ordered:
        # Operands coming out of interned connectives are already in
        # canonical order; only genuinely unordered inputs pay the sort.
        flat.sort(key=Formula.sort_key)
    return flat


def make_and(*operands: Formula) -> Formula:
    """Canonical conjunction of any number of operands (0 -> TRUE)."""
    flat = _canonical_operands(operands, And, identity=TRUE, absorbing=FALSE)
    if flat is None:
        return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def make_or(*operands: Formula) -> Formula:
    """Canonical disjunction of any number of operands (0 -> FALSE)."""
    flat = _canonical_operands(operands, Or, identity=FALSE, absorbing=TRUE)
    if flat is None:
        return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def const(value: bool) -> Const:
    """The singleton constant for ``value``."""
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

def formula_from_obj(obj: Obj) -> Formula:
    """Inverse of :meth:`Formula.to_obj`.

    The wire format is JSON-able: ``True``/``False`` for constants,
    ``["var", owner, kind, index]``, ``["not", f]``,
    ``["and"|"or", [f, ...]]``.
    """
    if isinstance(obj, bool):
        return const(obj)
    if not isinstance(obj, list) or not obj:
        raise ValueError(f"malformed formula object: {obj!r}")
    tag = obj[0]
    if tag == "var":
        _, owner, kind, index = obj
        return Var(owner, kind, index)
    if tag == "not":
        return make_not(formula_from_obj(obj[1]))
    if tag == "and":
        return make_and(*(formula_from_obj(child) for child in obj[1]))
    if tag == "or":
        return make_or(*(formula_from_obj(child) for child in obj[1]))
    raise ValueError(f"unknown formula tag {tag!r}")


def iter_subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield every node of the formula tree (pre-order)."""
    stack = [formula]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Not):
            stack.append(current.child)
        elif isinstance(current, _NAry):
            stack.extend(current.children)


__all__ = [
    "Formula",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "const",
    "make_not",
    "make_and",
    "make_or",
    "formula_from_obj",
    "iter_subformulas",
    "pool_stats",
]
