"""Systems of Boolean equations and their solution.

The third stage of ParBoX (paper, "Composition of partial answers")
receives, for each fragment, vectors whose entries are formulas over the
variables of its sub-fragments.  Together these form a *linear system of
Boolean equations*: every variable is defined by exactly one formula, and
the dependency relation between fragments is a tree -- hence acyclic --
so the system can be solved by a single bottom-up pass (Example 3.3
walks through the unification ``dx8 -> 1``, ``dy8 -> dx8``, ``dz8 -> 0``).

:class:`BooleanEquationSystem` implements the general solver.  It does
not assume tree structure; any acyclic definition set is solved by an
iterative memoized worklist, and genuine cycles raise
:class:`CyclicDefinitionError`.

The solver memoizes **per distinct formula**, not just per variable:
formulas are hash-consed (:mod:`repro.boolexpr.formula`), so a memo
table keyed on formula objects shares every common sub-formula's truth
value across all reads of the system -- the N answer entries of a
batched ``evalST`` (:func:`repro.core.eval_st.eval_st_many`) each cost
only the sub-formulas the earlier reads have not already forced.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.boolexpr.formula import And, Const, Formula, Not, Or, Var


class CyclicDefinitionError(ValueError):
    """The definitions contain a dependency cycle (impossible for trees)."""

    def __init__(self, cycle: list[Var]) -> None:
        super().__init__("cyclic variable definitions: " + " -> ".join(map(repr, cycle)))
        self.cycle = cycle


class UnboundVariableError(KeyError):
    """A formula references a variable with no definition."""

    def __init__(self, var: Var) -> None:
        super().__init__(f"no definition for variable {var!r}")
        self.var = var


class BooleanEquationSystem:
    """A set of definitions ``var := formula`` plus a solver.

    >>> from repro.boolexpr import Var, TRUE, make_or
    >>> sys_ = BooleanEquationSystem()
    >>> a, b = Var("F1", "V", 0), Var("F2", "V", 0)
    >>> sys_.define(a, make_or(b, TRUE))
    >>> sys_.define(b, TRUE)
    >>> sys_.value_of(a)
    True
    """

    def __init__(
        self, resolver: Optional[Callable[[Var], Optional[Formula]]] = None
    ) -> None:
        self._definitions: dict[Var, Formula] = {}
        self._solution: dict[Var, bool] = {}
        self._partial: dict[Var, bool | None] = {}
        #: formula -> truth value, shared across every read of the
        #: system (interning makes equal formulas one key).
        self._memo: dict[Formula, bool] = {}
        #: Optional lazy definition source: consulted (and its result
        #: cached into ``_definitions``) when a variable has no
        #: explicit definition.  ``None`` from the resolver means
        #: genuinely unbound.  Lets ``evalST`` hand the solver a whole
        #: triplet set without materializing the ``3 n card(F)``
        #: definitions the answer never reaches.
        self._resolver = resolver

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def define(self, var: Var, formula: Formula) -> None:
        """Add ``var := formula``; redefining a variable is an error."""
        if var in self._definitions:
            raise ValueError(f"variable {var!r} is already defined")
        self._definitions[var] = formula
        self._solution.clear()
        self._partial.clear()
        self._memo.clear()

    def define_many(self, pairs: Iterable[tuple[Var, Formula]]) -> None:
        """Add several definitions at once."""
        for var, formula in pairs:
            self.define(var, formula)

    def _lookup(self, var: Var) -> Optional[Formula]:
        """The definition of ``var``, pulling lazily from the resolver.

        A resolver hit is cached into ``_definitions`` without touching
        the solution/memo caches: the definition was always this value,
        it just had not been materialized yet.
        """
        definition = self._definitions.get(var)
        if definition is None and self._resolver is not None:
            definition = self._resolver(var)
            if definition is not None:
                self._definitions[var] = definition
        return definition

    def is_defined(self, var: Var) -> bool:
        """True when the system carries (or can resolve) a definition."""
        return self._lookup(var) is not None

    def definition_of(self, var: Var) -> Formula:
        """The defining formula of ``var``."""
        definition = self._lookup(var)
        if definition is None:
            raise UnboundVariableError(var)
        return definition

    def __len__(self) -> int:
        return len(self._definitions)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def value_of(self, var: Var) -> bool:
        """The truth value of ``var`` under the (unique) solution."""
        if var in self._solution:
            return self._solution[var]
        return self._eval_formula(var)

    def evaluate(self, formula: Formula) -> bool:
        """Truth value of an arbitrary formula over defined variables."""
        return self._eval_formula(formula)

    def partial_value_of(self, var: Var) -> bool | None:
        """Kleene (three-valued) value of ``var`` given *partial* definitions.

        Undefined variables evaluate to "unknown" (``None``); unknowns
        propagate through connectives except where the known operands
        force the result (``x OR 1 == 1`` even with ``x`` unknown).
        LazyParBoX uses this to stop descending the source tree as soon
        as the answers gathered so far determine the query result
        (paper, Section 4 "Lazy computation").
        """
        if var in self._partial:
            return self._partial[var]
        if self._lookup(var) is None:
            self._partial[var] = None
            return None
        stack: list[tuple[Var, bool]] = [(var, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                definition = self._definitions[current]
                env = {v: self._partial.get(v) for v in definition.variables()}
                self._partial[current] = _kleene(definition, env)
                continue
            if current in self._partial:
                continue
            definition = self._lookup(current)
            if definition is None:
                self._partial[current] = None
                continue
            stack.append((current, True))
            for dependency in definition.variables():
                if dependency not in self._partial:
                    stack.append((dependency, False))
        return self._partial[var]

    def try_evaluate(self, formula: Formula) -> bool | None:
        """Kleene value of an arbitrary formula; ``None`` when undetermined."""
        env = {var: self.partial_value_of(var) for var in formula.variables()}
        return _kleene(formula, env)

    def _eval_formula(self, root: Formula) -> bool:
        """Iterative worklist evaluation with a per-formula memo.

        Stack entries are ``(formula, expanded)``: an unexpanded entry
        schedules its children (for a ``Var``, its defining formula),
        an expanded one combines the already-memoized child values.
        LIFO order guarantees a sub-formula is fully resolved before any
        later reference to it pops, so every distinct formula is
        evaluated at most once *per system lifetime* -- the memo
        survives across reads.  Cycle detection tracks only variables
        (the formula structure itself is acyclic by construction).
        """
        if isinstance(root, Const):
            return root.value
        memo = self._memo
        cached = memo.get(root)
        if cached is not None:
            return cached
        definitions = self._definitions
        solution = self._solution
        in_progress: set[Var] = set()
        path: list[Var] = []
        stack: list[tuple[Formula, bool]] = [(root, False)]
        while stack:
            formula, expanded = stack.pop()
            cls = type(formula)
            if expanded:
                if cls is Var:
                    value = memo[definitions[formula]]
                    memo[formula] = value
                    solution[formula] = value
                    in_progress.discard(formula)
                    path.pop()
                elif cls is Not:
                    memo[formula] = not memo[formula.child]
                elif cls is And:
                    memo[formula] = all(memo[child] for child in formula.children)
                else:  # Or
                    memo[formula] = any(memo[child] for child in formula.children)
                continue
            if formula in memo:
                continue
            if cls is Const:
                memo[formula] = formula.value
                continue
            if cls is Var:
                if formula in solution:
                    memo[formula] = solution[formula]
                    continue
                if formula in in_progress:
                    start = path.index(formula)
                    raise CyclicDefinitionError(path[start:] + [formula])
                definition = self._lookup(formula)
                if definition is None:
                    raise UnboundVariableError(formula)
                in_progress.add(formula)
                path.append(formula)
                stack.append((formula, True))
                if definition not in memo:
                    stack.append((definition, False))
                continue
            stack.append((formula, True))
            if cls is Not:
                child = formula.child
                if child not in memo:
                    stack.append((child, False))
            else:
                for child in formula.children:
                    if child not in memo:
                        stack.append((child, False))
        return memo[root]

    def solve_all(self) -> Mapping[Var, bool]:
        """Solve every defined variable and return the full assignment."""
        for var in list(self._definitions):
            self.value_of(var)
        return dict(self._solution)


def _kleene(formula: Formula, env: Mapping[Var, bool | None]) -> bool | None:
    """Three-valued evaluation: ``None`` stands for "unknown"."""
    from repro.boolexpr.formula import And, Const, Not, Or

    if isinstance(formula, Const):
        return formula.value
    if isinstance(formula, Var):
        return env.get(formula)
    if isinstance(formula, Not):
        value = _kleene(formula.child, env)
        return None if value is None else not value
    if isinstance(formula, And):
        saw_unknown = False
        for child in formula.children:
            value = _kleene(child, env)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True
    if isinstance(formula, Or):
        saw_unknown = False
        for child in formula.children:
            value = _kleene(child, env)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False
    raise TypeError(f"not a formula: {formula!r}")


__all__ = ["BooleanEquationSystem", "CyclicDefinitionError", "UnboundVariableError"]
