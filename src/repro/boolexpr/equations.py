"""Systems of Boolean equations and their solution.

The third stage of ParBoX (paper, "Composition of partial answers")
receives, for each fragment, vectors whose entries are formulas over the
variables of its sub-fragments.  Together these form a *linear system of
Boolean equations*: every variable is defined by exactly one formula, and
the dependency relation between fragments is a tree -- hence acyclic --
so the system can be solved by a single bottom-up pass (Example 3.3
walks through the unification ``dx8 -> 1``, ``dy8 -> dx8``, ``dz8 -> 0``).

:class:`BooleanEquationSystem` implements the general solver.  It does
not assume tree structure; any acyclic definition set is solved by
memoized depth-first evaluation, and genuine cycles raise
:class:`CyclicDefinitionError`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.boolexpr.formula import Formula, Var


class CyclicDefinitionError(ValueError):
    """The definitions contain a dependency cycle (impossible for trees)."""

    def __init__(self, cycle: list[Var]) -> None:
        super().__init__("cyclic variable definitions: " + " -> ".join(map(repr, cycle)))
        self.cycle = cycle


class UnboundVariableError(KeyError):
    """A formula references a variable with no definition."""

    def __init__(self, var: Var) -> None:
        super().__init__(f"no definition for variable {var!r}")
        self.var = var


class BooleanEquationSystem:
    """A set of definitions ``var := formula`` plus a solver.

    >>> from repro.boolexpr import Var, TRUE, make_or
    >>> sys_ = BooleanEquationSystem()
    >>> a, b = Var("F1", "V", 0), Var("F2", "V", 0)
    >>> sys_.define(a, make_or(b, TRUE))
    >>> sys_.define(b, TRUE)
    >>> sys_.value_of(a)
    True
    """

    def __init__(self) -> None:
        self._definitions: dict[Var, Formula] = {}
        self._solution: dict[Var, bool] = {}
        self._partial: dict[Var, bool | None] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def define(self, var: Var, formula: Formula) -> None:
        """Add ``var := formula``; redefining a variable is an error."""
        if var in self._definitions:
            raise ValueError(f"variable {var!r} is already defined")
        self._definitions[var] = formula
        self._solution.clear()
        self._partial.clear()

    def define_many(self, pairs: Iterable[tuple[Var, Formula]]) -> None:
        """Add several definitions at once."""
        for var, formula in pairs:
            self.define(var, formula)

    def is_defined(self, var: Var) -> bool:
        """True when the system carries a definition for ``var``."""
        return var in self._definitions

    def definition_of(self, var: Var) -> Formula:
        """The defining formula of ``var``."""
        try:
            return self._definitions[var]
        except KeyError:
            raise UnboundVariableError(var) from None

    def __len__(self) -> int:
        return len(self._definitions)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def value_of(self, var: Var) -> bool:
        """The truth value of ``var`` under the (unique) solution."""
        if var in self._solution:
            return self._solution[var]
        self._solve_from(var)
        return self._solution[var]

    def evaluate(self, formula: Formula) -> bool:
        """Truth value of an arbitrary formula over defined variables."""
        env = {var: self.value_of(var) for var in formula.variables()}
        return formula.evaluate(env)

    def partial_value_of(self, var: Var) -> bool | None:
        """Kleene (three-valued) value of ``var`` given *partial* definitions.

        Undefined variables evaluate to "unknown" (``None``); unknowns
        propagate through connectives except where the known operands
        force the result (``x OR 1 == 1`` even with ``x`` unknown).
        LazyParBoX uses this to stop descending the source tree as soon
        as the answers gathered so far determine the query result
        (paper, Section 4 "Lazy computation").
        """
        if var in self._partial:
            return self._partial[var]
        if var not in self._definitions:
            self._partial[var] = None
            return None
        stack: list[tuple[Var, bool]] = [(var, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                definition = self._definitions[current]
                env = {v: self._partial.get(v) for v in definition.variables()}
                self._partial[current] = _kleene(definition, env)
                continue
            if current in self._partial:
                continue
            if current not in self._definitions:
                self._partial[current] = None
                continue
            stack.append((current, True))
            for dependency in self._definitions[current].variables():
                if dependency not in self._partial:
                    stack.append((dependency, False))
        return self._partial[var]

    def try_evaluate(self, formula: Formula) -> bool | None:
        """Kleene value of an arbitrary formula; ``None`` when undetermined."""
        env = {var: self.partial_value_of(var) for var in formula.variables()}
        return _kleene(formula, env)

    def _solve_from(self, root: Var) -> None:
        """Iterative memoized DFS with cycle detection."""
        stack: list[tuple[Var, bool]] = [(root, False)]
        in_progress: set[Var] = set()
        path: list[Var] = []
        while stack:
            var, expanded = stack.pop()
            if expanded:
                in_progress.discard(var)
                path.pop()
                definition = self._definitions[var]
                env = {v: self._solution[v] for v in definition.variables()}
                self._solution[var] = definition.evaluate(env)
                continue
            if var in self._solution:
                continue
            if var in in_progress:
                start = path.index(var)
                raise CyclicDefinitionError(path[start:] + [var])
            if var not in self._definitions:
                raise UnboundVariableError(var)
            in_progress.add(var)
            path.append(var)
            stack.append((var, True))
            for dependency in self._definitions[var].variables():
                if dependency not in self._solution:
                    stack.append((dependency, False))

    def solve_all(self) -> Mapping[Var, bool]:
        """Solve every defined variable and return the full assignment."""
        for var in list(self._definitions):
            self.value_of(var)
        return dict(self._solution)


def _kleene(formula: Formula, env: Mapping[Var, bool | None]) -> bool | None:
    """Three-valued evaluation: ``None`` stands for "unknown"."""
    from repro.boolexpr.formula import And, Const, Not, Or

    if isinstance(formula, Const):
        return formula.value
    if isinstance(formula, Var):
        return env.get(formula)
    if isinstance(formula, Not):
        value = _kleene(formula.child, env)
        return None if value is None else not value
    if isinstance(formula, And):
        saw_unknown = False
        for child in formula.children:
            value = _kleene(child, env)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True
    if isinstance(formula, Or):
        saw_unknown = False
        for child in formula.children:
            value = _kleene(child, env)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False
    raise TypeError(f"not a formula: {formula!r}")


__all__ = ["BooleanEquationSystem", "CyclicDefinitionError", "UnboundVariableError"]
