"""Formula composition: the paper's ``compFm`` and the two algebras.

``Procedure compFm`` (paper Fig. 3(b)) composes two partial results
``f1 op f2`` where each side may be a plain truth value or a residual
formula.  The paper's pseudocode folds constants (cases c0-c2) and
otherwise builds a syntactic connective (case c3).

The repository generalizes this into a *composition algebra* so the
ablation study (DESIGN.md Section 5) can compare:

* :class:`PaperAlgebra` -- a faithful transcription of ``compFm``:
  constant folding only, binary connectives, no other simplification;
* :class:`CanonicalAlgebra` -- the canonicalizing smart constructors of
  :mod:`repro.boolexpr.formula` (flattening, dedup, absorption), which
  keep formula size within the paper's ``O(card(F_j))`` bound with a
  small constant.

Both produce semantically identical results; they differ only in the
syntactic size of the residual formulas (i.e. network traffic).
"""

from __future__ import annotations

from repro.boolexpr.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Not,
    Or,
    make_and,
    make_not,
    make_or,
)

#: Operator tokens accepted by :func:`comp_fm`, matching the paper.
AND, OR, NEG = "AND", "OR", "NEG"


class FormulaAlgebra:
    """Strategy interface for composing partial results."""

    #: Human-readable name used in benchmark output.
    name = "abstract"

    def and_(self, f1: Formula, f2: Formula) -> Formula:
        raise NotImplementedError

    def or_(self, f1: Formula, f2: Formula) -> Formula:
        raise NotImplementedError

    def not_(self, f1: Formula) -> Formula:
        raise NotImplementedError

    def compose(self, f1: Formula, f2: Formula | None, op: str) -> Formula:
        """Dispatch on the operator token, mirroring ``compFm``'s interface."""
        if op == NEG:
            return self.not_(f1)
        if f2 is None:
            raise ValueError(f"binary operator {op} needs two operands")
        if op == AND:
            return self.and_(f1, f2)
        if op == OR:
            return self.or_(f1, f2)
        raise ValueError(f"unknown operator {op!r}")


class CanonicalAlgebra(FormulaAlgebra):
    """Composition through the canonicalizing smart constructors (default)."""

    name = "canonical"

    def and_(self, f1: Formula, f2: Formula) -> Formula:
        return make_and(f1, f2)

    def or_(self, f1: Formula, f2: Formula) -> Formula:
        return make_or(f1, f2)

    def not_(self, f1: Formula) -> Formula:
        return make_not(f1)


class PaperAlgebra(FormulaAlgebra):
    """Literal transcription of ``compFm``: constant folding only.

    Case analysis follows Fig. 3(b): ``isFormula(f)`` is true when ``f``
    contains variables.  When both operands are residual formulas a plain
    binary connective is built -- no flattening, no deduplication.  This
    is the ablation baseline showing why canonicalization matters for the
    traffic bound.
    """

    name = "paper"

    @staticmethod
    def _is_formula(f: Formula) -> bool:
        return not isinstance(f, Const)

    def and_(self, f1: Formula, f2: Formula) -> Formula:
        if not self._is_formula(f1):  # cases c0 / c1
            return f2 if f1 is TRUE else FALSE
        if not self._is_formula(f2):  # case c2
            return f1 if f2 is TRUE else FALSE
        return And((f1, f2))  # case c3

    def or_(self, f1: Formula, f2: Formula) -> Formula:
        if not self._is_formula(f1):
            return TRUE if f1 is TRUE else f2
        if not self._is_formula(f2):
            return TRUE if f2 is TRUE else f1
        return Or((f1, f2))

    def not_(self, f1: Formula) -> Formula:
        if not self._is_formula(f1):
            return FALSE if f1 is TRUE else TRUE
        return Not(f1)


#: The algebra used unless a caller opts into the ablation baseline.
DEFAULT_ALGEBRA = CanonicalAlgebra()


def comp_fm(f1: Formula, f2: Formula | None, op: str, algebra: FormulaAlgebra | None = None) -> Formula:
    """The paper's ``compFm(f1, f2, op)``.

    ``op`` is one of ``"AND"``, ``"OR"``, ``"NEG"`` (for ``NEG`` pass
    ``f2=None``, matching the paper's ``compFm(Vv(qj), NULL, NEG)``).
    """
    return (algebra or DEFAULT_ALGEBRA).compose(f1, f2, op)


__all__ = [
    "AND",
    "OR",
    "NEG",
    "comp_fm",
    "FormulaAlgebra",
    "CanonicalAlgebra",
    "PaperAlgebra",
    "DEFAULT_ALGEBRA",
]
