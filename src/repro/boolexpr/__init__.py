"""Boolean formulas over free variables.

Partial evaluation (paper, Section 3) turns each fragment's query result
into a vector of *Boolean formulas* over variables that stand for the
still-unknown results of sub-fragments.  This package provides:

* the immutable formula classes :data:`TRUE`, :data:`FALSE`,
  :class:`Var`, :class:`Not`, :class:`And`, :class:`Or` with
  canonicalizing smart constructors (flattening, constant folding,
  deduplication, complement absorption);
* :func:`comp_fm` -- the paper's ``compFm`` composition procedure
  (Fig. 3(b)), and the two composition *algebras* used by the ablation
  study (:class:`CanonicalAlgebra` vs :class:`PaperAlgebra`);
* :class:`BooleanEquationSystem` -- the solver used by ``evalST`` to
  unify variables bottom-up over the source tree (Example 3.3).
"""

from repro.boolexpr.formula import (
    TRUE,
    FALSE,
    And,
    Const,
    Formula,
    Not,
    Or,
    Var,
    make_and,
    make_not,
    make_or,
    formula_from_obj,
)
from repro.boolexpr.compose import (
    CanonicalAlgebra,
    FormulaAlgebra,
    PaperAlgebra,
    comp_fm,
)
from repro.boolexpr.equations import BooleanEquationSystem, CyclicDefinitionError, UnboundVariableError

__all__ = [
    "Formula",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "make_and",
    "make_or",
    "make_not",
    "formula_from_obj",
    "comp_fm",
    "FormulaAlgebra",
    "CanonicalAlgebra",
    "PaperAlgebra",
    "BooleanEquationSystem",
    "CyclicDefinitionError",
    "UnboundVariableError",
]
