"""``Procedure evalST``: composing partial answers (paper, Section 3.1).

The triplets collected from all fragments form a linear system of
Boolean equations -- each variable ``Var(F_k, kind, i)`` is defined by
the corresponding entry of ``F_k``'s triplet, whose formula in turn may
reference ``F_k``'s sub-fragments.  Because the fragment dependency
relation is a tree, the system is acyclic and one bottom-up pass over
the source tree solves it; the query answer is ``V_Froot[last]``
(Example 3.3 walks through the unification).

The implementation delegates to
:class:`~repro.boolexpr.equations.BooleanEquationSystem`, whose memoized
evaluation *is* that bottom-up pass (children are forced before their
parents by the dependency order).  The solver's worklist memoizes per
*interned formula*, not just per variable, and the memo lives on the
system object -- so the N answer reads of :func:`eval_st_many` share
every common sub-formula's value: one solve, N cheap reads, exactly the
batched composition stage's cost model.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.boolexpr.equations import BooleanEquationSystem
from repro.boolexpr.formula import Var
from repro.core.vectors import VectorTriplet
from repro.fragments.source_tree import SourceTree
from repro.xpath.qlist import QList


_VECTOR_OF_KIND = {"V": "v", "CV": "cv", "DV": "dv"}


def build_equation_system(
    triplets: Mapping[str, VectorTriplet], eager: bool = False
) -> BooleanEquationSystem:
    """Turn a set of triplets into the Boolean equation system.

    Conceptually defines ``Var(F, 'V', i) := V_F[i]`` (and CV/DV
    likewise) for every fragment ``F`` present; partial sets are
    allowed -- LazyParBoX adds triplets one source-tree depth at a time
    and an absent fragment's variables are simply unbound.

    By default the definitions materialize *lazily* through the
    solver's resolver hook: reading one answer touches only the
    variables reachable from it (the fragment-tree spine), not the full
    ``3 n card(F)`` definition set -- which keeps the composition stage
    O(reachable) as fragment counts grow.  Pass ``eager=True`` when
    every variable will be read anyway (``solve_all``, as in the
    selection engine's phase 1).
    """
    if eager:
        system = BooleanEquationSystem()
        for triplet in triplets.values():
            for index in range(len(triplet)):
                system.define(Var(triplet.fragment_id, "V", index), triplet.v[index])
                system.define(Var(triplet.fragment_id, "CV", index), triplet.cv[index])
                system.define(Var(triplet.fragment_id, "DV", index), triplet.dv[index])
        return system

    def resolve(var: Var):
        triplet = triplets.get(var.owner)
        if triplet is None:
            return None
        vector = getattr(triplet, _VECTOR_OF_KIND[var.kind])
        # Full bounds check: Python's negative indexing would otherwise
        # silently resolve Var(F, 'V', -1) to the last entry where the
        # eager build raised UnboundVariableError.
        if not 0 <= var.index < len(vector):
            return None
        return vector[var.index]

    return BooleanEquationSystem(resolver=resolve)


def answer_variable(
    source_tree: SourceTree,
    qlist: Optional[QList] = None,
    index: Optional[int] = None,
) -> Var:
    """The variable whose value is the query answer: ``V_Froot[last]``.

    Pass ``qlist`` for a standalone query (its last entry), or
    ``index`` for a batch member's answer entry inside a combined
    QList.  This is the single place that encodes "the answer lives in
    the root fragment's ``V`` vector".
    """
    if index is None:
        if qlist is None:
            raise ValueError("answer_variable needs a qlist or an index")
        index = qlist.answer_index
    return Var(source_tree.root_fragment_id, "V", index)


def eval_st(
    triplets: Mapping[str, VectorTriplet],
    source_tree: SourceTree,
    qlist: QList,
) -> bool:
    """Solve the equation system and return the query answer."""
    return eval_st_many(triplets, source_tree, [qlist.answer_index])[0]


def eval_st_many(
    triplets: Mapping[str, VectorTriplet],
    source_tree: SourceTree,
    answer_indices: Sequence[int],
) -> list[bool]:
    """Solve the system once; read several answer entries at the root.

    The batched composition stage: a combined batch QList produces one
    equation system, and each query's answer is the root fragment's
    ``V`` value at that query's answer index -- one solve, N answers
    (the system's memoization shares all common sub-formulas).
    """
    missing = [fid for fid in source_tree.fragment_ids() if fid not in triplets]
    if missing:
        raise ValueError(f"evalST needs a triplet for every fragment; missing {missing}")
    system = build_equation_system(triplets)
    return [
        system.value_of(answer_variable(source_tree, index=index))
        for index in answer_indices
    ]


def resolve_triplet(
    triplet: VectorTriplet,
    children: Mapping[str, VectorTriplet],
) -> VectorTriplet:
    """Substitute *ground* child triplets into a parent's triplet.

    Used by FullDistParBoX (``evalDistrST``) and NaiveDistributed, where
    a site resolves its fragment's formulas locally before passing a
    variable-free triplet upward ("no variables appear in the resulting
    triplet of vectors").
    """
    env = {}
    for child in children.values():
        if not child.is_ground():
            raise ValueError(f"child triplet {child.fragment_id} is not ground")
        env.update(child.binding_env())
    resolved = triplet.substitute(env)
    if not resolved.is_ground():
        unresolved = sorted({var.owner for var in resolved.variables()})
        raise ValueError(f"triplet {triplet.fragment_id} still references {unresolved}")
    return resolved


__all__ = [
    "eval_st",
    "eval_st_many",
    "build_equation_system",
    "answer_variable",
    "resolve_triplet",
]
