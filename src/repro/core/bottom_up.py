"""``Procedure bottomUp`` (paper, Fig. 3(b)): per-fragment partial evaluation.

One post-order traversal of a fragment computes, for every node ``v``,
the vectors ``V_v`` / ``CV_v`` / ``DV_v`` over the sub-query list:

* lines 1-5: children are evaluated first; their ``V`` values are
  OR-accumulated into ``CV_v`` and their ``DV`` values into ``DV_v``;
* lines 6-16: each sub-query's value at ``v`` is computed by case
  analysis on its normal form (see :mod:`repro.xpath.qlist`);
* line 17: ``DV_v[i] := V_v[i] OR DV_v[i]``.

**Virtual nodes** are where partial evaluation happens: a virtual leaf
referencing fragment ``F_k`` contributes the *free variables*
``Var(F_k, 'V', i)`` / ``Var(F_k, 'DV', i)`` instead of concrete values,
decoupling this fragment's evaluation from its sub-fragments' (paper:
"we propose a technique to decouple the dependencies between partial
evaluation processes ... by introducing Boolean variables").

**Two kernels.**  Subtrees with no virtual node below them only ever
produce ``TRUE``/``FALSE`` entries -- by far the common case (leaf
fragments are entirely ground, and even inner fragments are ground
everywhere except on the root-to-virtual-node paths).  The *bitset
kernel* represents such a subtree's ``V``/``CV``/``DV`` as Python-int
bitmasks (bit *i* = entry *i* holds), so child folding (``cv |= v``)
and the ``DV := V or DV`` update are single word-parallel operations
over all *n* entries, the leaf cases (``ε`` / ``label()`` / ``text()``)
resolve through three precompiled per-payload masks with no per-entry
dispatch at all, and only the entries that reference earlier entries
run -- as a straight-line function generated once per QList with every
opcode and operand specialized away.  The whole pass is one store-free
frame traversal (:func:`_frame_bottom_up`): accumulators stay bitmasks
until the first virtual node folds in, then *upgrade* to formula lists,
so the algebra runs exactly on the root-to-virtual-node paths and
ground child subtrees fold in as constant bits.  (The pure-ground
variant :func:`_ground_fast_path` backs the centralized evaluator,
where a virtual node is an error rather than an upgrade.)  The *formula
kernel* -- ``kernel="formula"`` -- is the classic algebra-everywhere
path.  Both kernels produce bitwise-identical triplets under either
composition algebra, because every algebra folds constants the same
way -- checked exhaustively by ``tests/test_hotpath_kernel.py``.

The traversal is iterative (explicit post-order), so arbitrarily deep
fragments do not hit the Python recursion limit, and keeps only the
frontier of child vectors alive, matching the paper's observation that
two triplets (plus one per virtual node) suffice.  The deterministic
cost ledger (``nodes_visited``, ``qlist_ops``) is defined by the
algorithm, not the kernel, and is identical on both paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.boolexpr.compose import CanonicalAlgebra, DEFAULT_ALGEBRA, FormulaAlgebra
from repro.boolexpr.formula import FALSE, TRUE, Var, make_or
from repro.core.vectors import VectorTriplet
from repro.fragments.fragment import Fragment
from repro.xpath.qlist import (
    OP_AND,
    OP_CHILD,
    OP_DESC,
    OP_EPSILON,
    OP_LABEL_IS,
    OP_NOT,
    OP_OR,
    OP_SELF_QUAL,
    OP_SELF_SEQ,
    OP_TEXT_IS,
    QList,
)

# Compact opcodes for the inner loop.
_EPS, _LABEL, _TEXT, _CHILD, _DESC, _SELFQ, _SELFSEQ, _AND, _OR, _NOT = range(10)

_OPCODE = {
    OP_EPSILON: _EPS,
    OP_LABEL_IS: _LABEL,
    OP_TEXT_IS: _TEXT,
    OP_CHILD: _CHILD,
    OP_DESC: _DESC,
    OP_SELF_QUAL: _SELFQ,
    OP_SELF_SEQ: _SELFSEQ,
    OP_AND: _AND,
    OP_OR: _OR,
    OP_NOT: _NOT,
}

#: Kernel selection.  ``"auto"`` runs the bitset fast path on ground
#: subtrees and the formula algebra on virtual-node paths; ``"formula"``
#: forces the classic path everywhere (the oracle for the agreement
#: tests and the baseline `benchmarks/bench_hotpath.py` measures
#: against).  Module-level so tests can monkeypatch the default for a
#: whole engine/executor stack without threading a parameter through.
DEFAULT_KERNEL = "auto"
_KERNELS = ("auto", "formula")


@dataclass(frozen=True)
class BottomUpStats:
    """Deterministic and timing costs of one fragment evaluation."""

    nodes_visited: int
    qlist_ops: int
    wall_seconds: float


def compile_entries(qlist: QList) -> list[tuple[int, int, int, Optional[str]]]:
    """Lower QList entries to ``(opcode, arg0, arg1, payload)`` tuples.

    The compiled form is cached on the QList instance: QLists are
    immutable, so the cache needs no invalidation, and every fragment
    of every round evaluating the same (combined) query reuses one
    lowering instead of recompiling per call.
    """
    cached = getattr(qlist, "_compiled_entries", None)
    if cached is not None:
        return cached
    compiled: list[tuple[int, int, int, Optional[str]]] = []
    for entry in qlist:
        arg0 = entry.args[0] if len(entry.args) > 0 else -1
        arg1 = entry.args[1] if len(entry.args) > 1 else -1
        compiled.append((_OPCODE[entry.op], arg0, arg1, entry.value))
    try:
        qlist._compiled_entries = compiled
    except AttributeError:  # exotic read-only QList stand-ins
        pass
    return compiled


def _compile_ground_kernel(
    entries: list[tuple[int, int, int, Optional[str]]]
):
    """Generate the straight-line bit kernel for one QList's dependent entries.

    Partial evaluation applied to ourselves: the per-entry opcode
    dispatch is specialized away by emitting one Python line per
    dependent entry with the opcode, operand indices and result bit
    baked in as constants, then compiling the function once per QList.
    The generated ``_kernel(cv, dv, base)`` takes the folded child
    masks plus the node's leaf-entry bits (``base``) and returns the
    node's full ``V`` mask -- no tuple unpacking, no dispatch, no
    allocation on any call.  Leaf entries (``ε``/``label()``/``text()``)
    never appear here; they are resolved into ``base`` by mask lookups.
    """
    lines = ["def _kernel(cv, dv, base):", "    v = base"]
    for index, (opcode, arg0, arg1, _payload) in enumerate(entries):
        bit = 1 << index
        if opcode == _CHILD:
            lines.append(f"    if cv >> {arg0} & 1: v |= {bit}")
        elif opcode == _DESC:
            # The classic loop interleaves line 17 with the case
            # analysis, so ``//qj`` observes the dv entry *after* its
            # own V contribution was folded in: read ``dv OR v``.
            lines.append(f"    if (dv | v) >> {arg0} & 1: v |= {bit}")
        elif opcode == _SELFQ:
            lines.append(f"    if v >> {arg0} & 1: v |= {bit}")
        elif opcode == _AND or opcode == _SELFSEQ:
            lines.append(f"    if v >> {arg0} & 1 and v >> {arg1} & 1: v |= {bit}")
        elif opcode == _OR:
            lines.append(f"    if (v >> {arg0} | v >> {arg1}) & 1: v |= {bit}")
        elif opcode == _NOT:
            lines.append(f"    if not v >> {arg0} & 1: v |= {bit}")
    lines.append("    return v")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - source built from int constants only
    return namespace["_kernel"]


def _ground_program(
    qlist: QList, entries: list[tuple[int, int, int, Optional[str]]]
) -> tuple[int, dict, dict, object, dict]:
    """The bitset kernel's precompiled form of one QList (cached on it).

    ``(eps_mask, label_masks, text_masks, kernel, leaf_memo,
    var_cache)``: the masks resolve all leaf entries of a node in O(1)
    dict lookups (bit *i* of ``label_masks[l]`` is set iff entry *i* is
    ``label() = l``), ``kernel`` is the generated straight-line
    function for the dependent entries, ``leaf_memo`` caches
    ``base -> V`` for childless nodes (their kernel result depends only
    on ``base``, and distinct bases are bounded by the document's
    label/text vocabulary), and ``var_cache`` holds each virtual
    owner's interned variable vectors.  All entries are deterministic,
    so concurrent site threads sharing the dicts race only on
    idempotent writes.
    """
    cached = getattr(qlist, "_ground_program", None)
    if cached is not None:
        return cached
    eps_mask = 0
    label_masks: dict[str, int] = {}
    text_masks: dict[str, int] = {}
    for index, (opcode, _arg0, _arg1, payload) in enumerate(entries):
        bit = 1 << index
        if opcode == _EPS:
            eps_mask |= bit
        elif opcode == _LABEL:
            label_masks[payload] = label_masks.get(payload, 0) | bit
        elif opcode == _TEXT:
            text_masks[payload] = text_masks.get(payload, 0) | bit
    # The trailing dicts: the leaf memo (base -> V mask) and the
    # virtual-variable cache (owner -> (V vars, DV vars) tuples), both
    # filled lazily and safely shared across threads (idempotent
    # writes keyed on deterministic values).
    program = (
        eps_mask,
        label_masks,
        text_masks,
        _compile_ground_kernel(entries),
        {},
        {},
    )
    try:
        qlist._ground_program = program
    except AttributeError:
        pass
    return program


def _virtual_vectors(
    var_cache: dict, owner: str, n: int
) -> tuple[tuple, tuple]:
    """The interned ``V``/``DV`` variable vectors of one virtual node."""
    cached = var_cache.get(owner)
    if cached is None:
        cached = (
            tuple(Var(owner, "V", i) for i in range(n)),
            tuple(Var(owner, "DV", i) for i in range(n)),
        )
        var_cache[owner] = cached
    return cached


def _ground_fast_path(
    root, program: tuple
) -> Optional[tuple[int, int, int, int]]:
    """One store-free pass over a fully-ground subtree.

    Post-order via an explicit frame stack (``[node, next_child, cv,
    dv]``), folding each finished node's masks straight into its
    parent's accumulators -- no result dictionary, no per-node vector
    allocation.  Childless nodes resolve through the leaf memo without
    even a frame.  Returns ``(V, CV, DV, nodes_visited)`` masks for the
    root, or ``None`` as soon as a virtual node is seen -- finding one
    is the *only* way this returns ``None``, which the centralized
    evaluator (its caller) turns into the "unfragmented tree required"
    error.  Fragment evaluation uses :func:`_frame_bottom_up`, which
    upgrades to the formula algebra instead.
    """
    eps_mask, label_masks, text_masks, kernel, leaf_memo, _var_cache = program
    nodes_visited = 0
    stack = [[root, 0, 0, 0]]
    while stack:
        frame = stack[-1]
        node = frame[0]
        children = node.children
        index = frame[1]
        if index < len(children):
            frame[1] = index + 1
            child = children[index]
            if child.fragment_ref is not None:
                return None  # virtual node: this subtree is not ground
            if child.children:
                stack.append([child, 0, 0, 0])
            else:
                nodes_visited += 1
                base = eps_mask | label_masks.get(child.label, 0)
                text = child.text
                if text is not None and text_masks:
                    base |= text_masks.get(text, 0)
                v = leaf_memo.get(base)
                if v is None:
                    v = kernel(0, 0, base)
                    leaf_memo[base] = v
                frame[2] |= v  # CV  |= child V
                frame[3] |= v  # DV |= child DV (== V for a leaf)
            continue
        stack.pop()
        nodes_visited += 1
        cv = frame[2]
        dv = frame[3]
        base = eps_mask | label_masks.get(node.label, 0)
        text = node.text
        if text is not None and text_masks:
            base |= text_masks.get(text, 0)
        v = kernel(cv, dv, base)
        dv |= v  # line 17, word-parallel
        if stack:
            parent = stack[-1]
            parent[2] |= v
            parent[3] |= dv
        else:
            return (v, cv, dv, nodes_visited)
    raise AssertionError("unreachable: the root frame always returns")


def _mask_to_formulas(mask: int, n: int) -> list:
    """Expand a result bitmask into the TRUE/FALSE entry list."""
    return [TRUE if mask >> i & 1 else FALSE for i in range(n)]


def _upgrade_frame(frame: list, n: int) -> tuple[list, list]:
    """Switch a frame's accumulators from bitmasks to formula lists.

    Sound in any child order: a TRUE bit accumulated so far stays TRUE
    under every later fold (``x OR 1 = 1`` in both algebras), and a
    zero bit is exactly the untouched FALSE accumulator.
    """
    cv = frame[2]
    if type(cv) is int:
        frame[2] = _mask_to_formulas(cv, n)
        frame[3] = _mask_to_formulas(frame[3], n)
    return frame[2], frame[3]


def _fold_masks_into_lists(cv: list, dv: list, v_mask: int, dv_mask: int) -> None:
    """Fold a ground child's result masks into formula accumulators.

    A set bit contributes TRUE, which absorbs whatever the accumulator
    holds (``x OR 1 = 1`` under every algebra); a zero bit contributes
    nothing -- identical to folding the expanded constant vector.
    """
    mask = v_mask
    while mask:
        low = mask & -mask
        cv[low.bit_length() - 1] = TRUE
        mask ^= low
    mask = dv_mask
    while mask:
        low = mask & -mask
        dv[low.bit_length() - 1] = TRUE
        mask ^= low


def _frame_bottom_up(root, program: tuple, entries, n: int, algebra) -> tuple:
    """The auto kernel: one frame-stack pass, bitset until proven virtual.

    Every frame accumulates its children's results as int bitmasks
    while all of them are ground, and *upgrades* to formula lists the
    moment a virtual node (or a formula-valued child subtree) folds in
    -- so the formula algebra runs exactly on the root-to-virtual-node
    paths and everything else stays word-parallel integer work.  No
    result store, no per-node vector allocation on the ground side.

    For the (default) canonical algebra, virtual children are not
    folded eagerly: their owners accumulate on the frame and every
    entry gets **one** n-ary ``make_or`` at node completion.  Sound and
    bitwise-identical because canonical disjunction is associative,
    commutative and flattening -- the left-fold chain and the n-ary
    call intern to the same formula object.  Non-canonical algebras
    (whose fold shape is observable, e.g. the paper-literal one) keep
    the classic pairwise fold in child order.

    Returns ``((V, CV, DV), nodes_visited)`` where the vectors are
    masks (fully ground fragment) or formula lists.
    """
    eps_mask, label_masks, text_masks, bit_kernel, leaf_memo, var_cache = program
    or_ = algebra.or_
    and_ = algebra.and_
    not_ = algebra.not_
    defer_virtuals = type(algebra) is CanonicalAlgebra
    nodes_visited = 0
    # frame: [node, next_child_index, cv, dv, deferred_virtual_owners]
    stack = [[root, 0, 0, 0, None]]
    while stack:
        frame = stack[-1]
        node = frame[0]
        children = node.children
        index = frame[1]
        if index < len(children):
            frame[1] = index + 1
            child = children[index]
            owner = child.fragment_ref
            if owner is not None:
                if defer_virtuals:
                    owners = frame[4]
                    if owners is None:
                        frame[4] = [owner]
                    else:
                        owners.append(owner)
                    continue
                # Non-canonical algebra: fold the virtual leaf's free
                # variables eagerly, in child order (they are never
                # FALSE, so every entry participates).
                cv, dv = _upgrade_frame(frame, n)
                for i in range(n):
                    value = Var(owner, "V", i)
                    current = cv[i]
                    cv[i] = value if current is FALSE else or_(current, value)
                    value = Var(owner, "DV", i)
                    current = dv[i]
                    dv[i] = value if current is FALSE else or_(current, value)
                continue
            if child.children:
                stack.append([child, 0, 0, 0, None])
                continue
            # Ground leaf: resolve through the memo, no frame needed.
            nodes_visited += 1
            base = eps_mask | label_masks.get(child.label, 0)
            text = child.text
            if text is not None and text_masks:
                base |= text_masks.get(text, 0)
            v = leaf_memo.get(base)
            if v is None:
                v = bit_kernel(0, 0, base)
                leaf_memo[base] = v
            cv = frame[2]
            if type(cv) is int:
                frame[2] = cv | v
                frame[3] = frame[3] | v  # a leaf's DV equals its V
            else:
                _fold_masks_into_lists(cv, frame[3], v, v)
            continue

        # All children folded: complete this node.
        stack.pop()
        nodes_visited += 1
        cv = frame[2]
        dv = frame[3]
        owners = frame[4]
        if owners is not None:
            # Deferred virtual folds (canonical algebra): one n-ary
            # disjunction per entry instead of a pairwise chain --
            # O(card) instead of O(card^2) operand visits.
            if type(cv) is int:
                cv = _mask_to_formulas(cv, n)
                dv = _mask_to_formulas(dv, n)
            vectors = [_virtual_vectors(var_cache, owner, n) for owner in owners]
            for i in range(n):
                cv[i] = make_or(cv[i], *(vec[0][i] for vec in vectors))
                dv[i] = make_or(dv[i], *(vec[1][i] for vec in vectors))
        if type(cv) is int:
            base = eps_mask | label_masks.get(node.label, 0)
            text = node.text
            if text is not None and text_masks:
                base |= text_masks.get(text, 0)
            v = bit_kernel(cv, dv, base)  # lines 6-16, specialized
            dv |= v  # line 17, word-parallel
            if not stack:
                return (v, cv, dv), nodes_visited
            parent = stack[-1]
            parent_cv = parent[2]
            if type(parent_cv) is int:
                parent[2] = parent_cv | v
                parent[3] = parent[3] | dv
            else:
                _fold_masks_into_lists(parent_cv, parent[3], v, dv)
            continue

        # Formula completion: lines 6-17, classic case analysis.
        v = [FALSE] * n
        label = node.label
        text = node.text
        for i in range(n):
            opcode, arg0, arg1, payload = entries[i]
            if opcode == _SELFQ:
                value = v[arg0]
            elif opcode == _CHILD:
                value = cv[arg0]
            elif opcode == _DESC:
                value = dv[arg0]
            elif opcode == _LABEL:
                value = TRUE if label == payload else FALSE
            elif opcode == _TEXT:
                value = TRUE if text == payload else FALSE
            elif opcode == _AND or opcode == _SELFSEQ:
                value = and_(v[arg0], v[arg1])
            elif opcode == _OR:
                value = or_(v[arg0], v[arg1])
            elif opcode == _NOT:
                value = not_(v[arg0])
            else:  # _EPS
                value = TRUE
            v[i] = value
            if value is not FALSE:  # line 17: DV := V or DV
                current = dv[i]
                dv[i] = value if current is FALSE else or_(value, current)
        if not stack:
            return (v, cv, dv), nodes_visited
        parent = stack[-1]
        parent_cv, parent_dv = _upgrade_frame(parent, n)
        for i in range(n):
            value = v[i]
            if value is not FALSE:
                current = parent_cv[i]
                parent_cv[i] = value if current is FALSE else or_(current, value)
            value = dv[i]
            if value is not FALSE:
                current = parent_dv[i]
                parent_dv[i] = value if current is FALSE else or_(current, value)
    raise AssertionError("unreachable: the root frame always returns")


def bottom_up(
    fragment: Fragment,
    qlist: QList,
    algebra: Optional[FormulaAlgebra] = None,
    kernel: Optional[str] = None,
) -> tuple[VectorTriplet, BottomUpStats]:
    """Partially evaluate ``qlist`` over one fragment.

    Returns the fragment's :class:`VectorTriplet` (formulas over the
    variables of its virtual nodes) and the evaluation costs.
    ``kernel`` is ``"auto"`` (bitset fast path on ground subtrees,
    the default) or ``"formula"`` (force the algebra everywhere); both
    return bitwise-identical triplets and cost ledgers.
    """
    algebra = algebra or DEFAULT_ALGEBRA
    kernel = kernel or DEFAULT_KERNEL
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
    entries = compile_entries(qlist)
    n = len(entries)
    started = time.perf_counter()

    if kernel == "auto":
        program = _ground_program(qlist, entries)
        (root_v, root_cv, root_dv), nodes_visited = _frame_bottom_up(
            fragment.root, program, entries, n, algebra
        )
        if type(root_v) is int:  # entirely ground fragment
            root_v = _mask_to_formulas(root_v, n)
            root_cv = _mask_to_formulas(root_cv, n)
            root_dv = _mask_to_formulas(root_dv, n)
        triplet = VectorTriplet(fragment.fragment_id, root_v, root_cv, root_dv)
        stats = BottomUpStats(
            nodes_visited=nodes_visited,
            qlist_ops=nodes_visited * n,
            wall_seconds=time.perf_counter() - started,
        )
        return triplet, stats

    # kernel == "formula": the classic store-based traversal, formula
    # algebra on every node -- the agreement oracle and perf baseline.
    or_ = algebra.or_
    and_ = algebra.and_
    not_ = algebra.not_
    nodes_visited = 0
    # node_id -> (V, DV) of completed subtrees not yet folded into a parent.
    store: dict[int, tuple[list, list]] = {}
    root = fragment.root
    root_cv: Optional[list] = None

    for node in root.iter_postorder():
        if node.is_virtual:
            owner = node.fragment_ref
            assert owner is not None
            v_vec = [Var(owner, "V", i) for i in range(n)]
            dv_vec = [Var(owner, "DV", i) for i in range(n)]
            store[node.node_id] = (v_vec, dv_vec)
            continue

        nodes_visited += 1
        cv = [FALSE] * n
        dv = [FALSE] * n
        for child in node.children:  # lines 1-5: fold children
            child_v, child_dv = store.pop(child.node_id)
            for i in range(n):
                value = child_v[i]
                if value is not FALSE:
                    current = cv[i]
                    cv[i] = value if current is FALSE else or_(current, value)
                value = child_dv[i]
                if value is not FALSE:
                    current = dv[i]
                    dv[i] = value if current is FALSE else or_(current, value)

        v = [FALSE] * n
        label = node.label
        text = node.text
        for i in range(n):  # lines 6-17: case analysis per sub-query
            opcode, arg0, arg1, payload = entries[i]
            if opcode == _SELFQ:
                value = v[arg0]
            elif opcode == _CHILD:
                value = cv[arg0]
            elif opcode == _DESC:
                value = dv[arg0]
            elif opcode == _LABEL:
                value = TRUE if label == payload else FALSE
            elif opcode == _TEXT:
                value = TRUE if text == payload else FALSE
            elif opcode == _AND or opcode == _SELFSEQ:
                value = and_(v[arg0], v[arg1])
            elif opcode == _OR:
                value = or_(v[arg0], v[arg1])
            elif opcode == _NOT:
                value = not_(v[arg0])
            else:  # _EPS
                value = TRUE
            v[i] = value
            if value is not FALSE:  # line 17: DV := V or DV
                current = dv[i]
                dv[i] = value if current is FALSE else or_(value, current)
        store[node.node_id] = (v, dv)
        if node is root:
            root_cv = cv

    root_v, root_dv = store.pop(root.node_id)
    assert root_cv is not None and not store
    triplet = VectorTriplet(fragment.fragment_id, root_v, root_cv, root_dv)
    stats = BottomUpStats(
        nodes_visited=nodes_visited,
        qlist_ops=nodes_visited * n,
        wall_seconds=time.perf_counter() - started,
    )
    return triplet, stats


# ----------------------------------------------------------------------
# Site-vectorized evaluation: all ground fragments of a site per call
# ----------------------------------------------------------------------

#: Lane budget of one packed kernel call, in bits.  The multi-lane
#: kernel evaluates many nodes at once by packing each node's vectors
#: as a bit-lane of stride *n* (the QList size) inside one big int;
#: 4096 bits (~64 machine words) keeps each big-int operation cheap
#: while amortizing the per-line interpreter cost of the generated
#: kernel over ``LANE_BITS // n`` nodes.
LANE_BITS = 4096


def _compile_lane_kernel(entries):
    """Generate the word-parallel *multi-lane* variant of the ground kernel.

    Same per-entry semantics as :func:`_compile_ground_kernel`, but
    branch-free and simultaneous over many nodes: lane *k* -- the bit
    range ``[k*n, (k+1)*n)`` -- of ``cv``/``dv``/``base`` holds node
    *k*'s masks, and ``lanes`` has bit ``k*n`` set for every occupied
    lane.  Each dependent entry contributes ``((expr) & lanes) << i``:
    shifting by an operand index aligns every lane's operand bit at its
    lane base, ``& lanes`` reduces it to one test bit per lane, and
    ``<< i`` lands the result at entry *i* of each lane.  QList entries
    only reference earlier entries (topological order), so lower bits
    of ``v`` are final when read, exactly as in the scalar kernel; the
    ``~`` of a NOT entry goes negative but ``& lanes`` restores a
    non-negative value.  Lane *k* of the result equals
    ``_kernel(cv_k, dv_k, base_k)`` bit for bit.
    """
    lines = ["def _lane_kernel(cv, dv, base, lanes):", "    v = base"]
    for index, (opcode, arg0, arg1, _payload) in enumerate(entries):
        if opcode == _CHILD:
            expr = f"cv >> {arg0}"
        elif opcode == _DESC:
            expr = f"(dv | v) >> {arg0}"
        elif opcode == _SELFQ:
            expr = f"v >> {arg0}"
        elif opcode == _AND or opcode == _SELFSEQ:
            expr = f"(v >> {arg0}) & (v >> {arg1})"
        elif opcode == _OR:
            expr = f"(v >> {arg0}) | (v >> {arg1})"
        elif opcode == _NOT:
            expr = f"~(v >> {arg0})"
        else:
            continue  # leaf entries resolve through the base masks
        shift = f" << {index}" if index else ""
        lines.append(f"    v |= (({expr}) & lanes){shift}")
    lines.append("    return v")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - source built from int constants only
    return namespace["_lane_kernel"]


def _lane_program(qlist: QList, entries):
    """The compiled multi-lane kernel of one QList (cached on it)."""
    cached = getattr(qlist, "_lane_kernel", None)
    if cached is None:
        cached = _compile_lane_kernel(entries)
        try:
            qlist._lane_kernel = cached
        except AttributeError:
            pass
    return cached


class GroundLinear:
    """A fully-ground fragment linearized for the site-vectorized pass.

    Postorder arrays (``parents[i]`` is the postorder index of node
    *i*'s parent, ``-1`` for the root) plus a levelization by height:
    all nodes of one height have no dependencies among themselves, so
    an entire level can be evaluated in one multi-lane kernel call.
    ``bases`` caches, per QList, each node's precomputed leaf-entry
    mask -- the only part of the pass that looks at labels/texts -- so
    resident holders re-evaluate a fragment without touching the tree.
    """

    __slots__ = ("parents", "levels", "labels", "texts", "size", "bases")

    def __init__(self, parents, levels, labels, texts):
        self.parents = parents
        self.levels = levels
        self.labels = labels
        self.texts = texts
        self.size = len(parents)
        self.bases: dict = {}


def linearize_ground(fragment: Fragment) -> Optional[GroundLinear]:
    """Linearize a fragment for :func:`site_bottom_up`.

    Returns ``None`` when the fragment holds a virtual node (such
    fragments take the per-fragment upgrade path instead).
    """
    index_of: dict[int, int] = {}
    parents: list[int] = []
    labels: list[str] = []
    texts: list[Optional[str]] = []
    heights: list[int] = []
    for node in fragment.root.iter_postorder():
        if node.is_virtual:
            return None
        index = len(parents)
        index_of[id(node)] = index
        parents.append(-1)
        labels.append(node.label)
        texts.append(node.text)
        height = 0
        for child in node.children:
            child_index = index_of[id(child)]
            parents[child_index] = index
            child_height = heights[child_index] + 1
            if child_height > height:
                height = child_height
        heights.append(height)
    # Postorder yields the root last; its height bounds every node's.
    levels: list[list[int]] = [[] for _ in range(heights[-1] + 1)]
    for index, height in enumerate(heights):
        levels[height].append(index)
    return GroundLinear(parents, levels, labels, texts)


def _linear_bases(linear: GroundLinear, program: tuple, qlist: QList) -> list[int]:
    """Per-node leaf-entry masks of one (fragment, QList) pair, cached.

    Keyed by QList identity: QLists are immutable and resident holders
    keep one canonical object per query fingerprint, so the cache is
    exact and bounded by the number of distinct standing queries.
    """
    bases = linear.bases.get(qlist)
    if bases is None:
        eps_mask, label_masks, text_masks = program[0], program[1], program[2]
        label_get = label_masks.get
        if text_masks:
            text_get = text_masks.get
            bases = [
                eps_mask
                | label_get(label, 0)
                | (text_get(text, 0) if text is not None else 0)
                for label, text in zip(linear.labels, linear.texts)
            ]
        else:
            bases = [eps_mask | label_get(label, 0) for label in linear.labels]
        linear.bases[qlist] = bases
    return bases


def _lane_pass(
    linear: GroundLinear, program: tuple, lane_kernel, n: int, qlist: QList
) -> tuple[int, int, int]:
    """Levelized multi-lane evaluation of one linearized ground fragment.

    Height-0 nodes resolve through the shared leaf memo (one dict hit
    beats a lane gather/scatter); every higher level is evaluated in
    ``ceil(level_size / width)`` multi-lane kernel calls, folding each
    node's ``V``/``DV`` into its parent's accumulators on scatter.
    Returns the root's ``(V, CV, DV)`` masks, bit-identical to
    :func:`_ground_fast_path`.
    """
    _eps, _labels, _texts, kernel, leaf_memo, _var_cache = program
    bases = _linear_bases(linear, program, qlist)
    parents = linear.parents
    size = linear.size
    cv = [0] * size
    dv = [0] * size
    root_v = 0
    memo_get = leaf_memo.get
    for index in linear.levels[0]:
        base = bases[index]
        v = memo_get(base)
        if v is None:
            v = kernel(0, 0, base)
            leaf_memo[base] = v
        parent = parents[index]
        if parent >= 0:
            cv[parent] |= v
            dv[parent] |= v  # a leaf's DV equals its V
        else:
            root_v = v  # single-node fragment
    width = max(1, LANE_BITS // n) if n else 1
    entry_mask = (1 << n) - 1
    for level in linear.levels[1:]:
        for start in range(0, len(level), width):
            chunk = level[start : start + width]
            shift = 0
            cv_packed = 0
            dv_packed = 0
            base_packed = 0
            lanes = 0
            for index in chunk:
                cv_packed |= cv[index] << shift
                dv_packed |= dv[index] << shift
                base_packed |= bases[index] << shift
                lanes |= 1 << shift
                shift += n
            v_packed = lane_kernel(cv_packed, dv_packed, base_packed, lanes)
            shift = 0
            for index in chunk:
                v = (v_packed >> shift) & entry_mask
                parent = parents[index]
                if parent >= 0:
                    cv[parent] |= v
                    dv[parent] |= dv[index] | v  # fold DV := DV|V upward
                else:
                    root_v = v
                shift += n
    root = size - 1  # postorder: the root is always last
    return root_v, cv[root], dv[root] | root_v


def site_bottom_up(
    residents,
    qlist: QList,
    algebra: Optional[FormulaAlgebra] = None,
    kernel: Optional[str] = None,
) -> list[tuple[VectorTriplet, int]]:
    """Evaluate all of one site's resident fragments in one vectorized pass.

    ``residents`` is a sequence of ``(fragment, linear)`` pairs, where
    ``linear`` is :func:`linearize_ground`'s result (``None`` for
    fragments holding virtual nodes).  Ground fragments -- the common
    case by far -- share one compiled program, one leaf memo and one
    multi-lane kernel, so a site holding *k* co-located fragments pays
    one kernel invocation per packed level chunk rather than one full
    traversal per fragment; virtual-node fragments fall back to the
    per-fragment upgrade path unchanged.  Returns ``[(triplet,
    nodes_visited), ...]`` in input order, bitwise identical to calling
    :func:`bottom_up` per fragment -- same triplets, same deterministic
    ledger (``qlist_ops`` remains ``nodes_visited * n`` by definition).
    """
    algebra = algebra or DEFAULT_ALGEBRA
    kernel = kernel or DEFAULT_KERNEL
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
    results: list[tuple[VectorTriplet, int]] = []
    if kernel != "auto":
        for fragment, _linear in residents:
            triplet, stats = bottom_up(fragment, qlist, algebra, kernel)
            results.append((triplet, stats.nodes_visited))
        return results
    entries = compile_entries(qlist)
    n = len(entries)
    program = _ground_program(qlist, entries)
    lane_kernel = _lane_program(qlist, entries)
    for fragment, linear in residents:
        if linear is None:
            triplet, stats = bottom_up(fragment, qlist, algebra, "auto")
            results.append((triplet, stats.nodes_visited))
            continue
        root_v, root_cv, root_dv = _lane_pass(linear, program, lane_kernel, n, qlist)
        triplet = VectorTriplet(
            fragment.fragment_id,
            _mask_to_formulas(root_v, n),
            _mask_to_formulas(root_cv, n),
            _mask_to_formulas(root_dv, n),
        )
        results.append((triplet, linear.size))
    return results


__all__ = [
    "bottom_up",
    "BottomUpStats",
    "compile_entries",
    "DEFAULT_KERNEL",
    "GroundLinear",
    "LANE_BITS",
    "linearize_ground",
    "site_bottom_up",
]
