"""``Procedure bottomUp`` (paper, Fig. 3(b)): per-fragment partial evaluation.

One post-order traversal of a fragment computes, for every node ``v``,
the vectors ``V_v`` / ``CV_v`` / ``DV_v`` over the sub-query list:

* lines 1-5: children are evaluated first; their ``V`` values are
  OR-accumulated into ``CV_v`` and their ``DV`` values into ``DV_v``;
* lines 6-16: each sub-query's value at ``v`` is computed by case
  analysis on its normal form (see :mod:`repro.xpath.qlist`);
* line 17: ``DV_v[i] := V_v[i] OR DV_v[i]``.

**Virtual nodes** are where partial evaluation happens: a virtual leaf
referencing fragment ``F_k`` contributes the *free variables*
``Var(F_k, 'V', i)`` / ``Var(F_k, 'DV', i)`` instead of concrete values,
decoupling this fragment's evaluation from its sub-fragments' (paper:
"we propose a technique to decouple the dependencies between partial
evaluation processes ... by introducing Boolean variables").

The traversal is iterative (explicit post-order), so arbitrarily deep
fragments do not hit the Python recursion limit, and keeps only the
frontier of child vectors alive, matching the paper's observation that
two triplets (plus one per virtual node) suffice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.boolexpr.compose import DEFAULT_ALGEBRA, FormulaAlgebra
from repro.boolexpr.formula import FALSE, TRUE, Var
from repro.core.vectors import VectorTriplet
from repro.fragments.fragment import Fragment
from repro.xpath.qlist import (
    OP_AND,
    OP_CHILD,
    OP_DESC,
    OP_EPSILON,
    OP_LABEL_IS,
    OP_NOT,
    OP_OR,
    OP_SELF_QUAL,
    OP_SELF_SEQ,
    OP_TEXT_IS,
    QList,
)

# Compact opcodes for the inner loop.
_EPS, _LABEL, _TEXT, _CHILD, _DESC, _SELFQ, _SELFSEQ, _AND, _OR, _NOT = range(10)

_OPCODE = {
    OP_EPSILON: _EPS,
    OP_LABEL_IS: _LABEL,
    OP_TEXT_IS: _TEXT,
    OP_CHILD: _CHILD,
    OP_DESC: _DESC,
    OP_SELF_QUAL: _SELFQ,
    OP_SELF_SEQ: _SELFSEQ,
    OP_AND: _AND,
    OP_OR: _OR,
    OP_NOT: _NOT,
}


@dataclass(frozen=True)
class BottomUpStats:
    """Deterministic and timing costs of one fragment evaluation."""

    nodes_visited: int
    qlist_ops: int
    wall_seconds: float


def compile_entries(qlist: QList) -> list[tuple[int, int, int, Optional[str]]]:
    """Lower QList entries to ``(opcode, arg0, arg1, payload)`` tuples."""
    compiled: list[tuple[int, int, int, Optional[str]]] = []
    for entry in qlist:
        arg0 = entry.args[0] if len(entry.args) > 0 else -1
        arg1 = entry.args[1] if len(entry.args) > 1 else -1
        compiled.append((_OPCODE[entry.op], arg0, arg1, entry.value))
    return compiled


def bottom_up(
    fragment: Fragment,
    qlist: QList,
    algebra: Optional[FormulaAlgebra] = None,
) -> tuple[VectorTriplet, BottomUpStats]:
    """Partially evaluate ``qlist`` over one fragment.

    Returns the fragment's :class:`VectorTriplet` (formulas over the
    variables of its virtual nodes) and the evaluation costs.
    """
    algebra = algebra or DEFAULT_ALGEBRA
    or_ = algebra.or_
    and_ = algebra.and_
    not_ = algebra.not_
    entries = compile_entries(qlist)
    n = len(entries)

    started = time.perf_counter()
    nodes_visited = 0
    # node_id -> (V, DV) of completed subtrees not yet folded into a parent.
    store: dict[int, tuple[list, list]] = {}
    root = fragment.root
    root_cv: Optional[list] = None

    for node in root.iter_postorder():
        if node.is_virtual:
            owner = node.fragment_ref
            assert owner is not None
            v_vec = [Var(owner, "V", i) for i in range(n)]
            dv_vec = [Var(owner, "DV", i) for i in range(n)]
            store[node.node_id] = (v_vec, dv_vec)
            continue

        nodes_visited += 1
        cv = [FALSE] * n
        dv = [FALSE] * n
        for child in node.children:  # lines 1-5: fold children
            child_v, child_dv = store.pop(child.node_id)
            for i in range(n):
                value = child_v[i]
                if value is not FALSE:
                    current = cv[i]
                    cv[i] = value if current is FALSE else or_(current, value)
                value = child_dv[i]
                if value is not FALSE:
                    current = dv[i]
                    dv[i] = value if current is FALSE else or_(current, value)

        v = [FALSE] * n
        label = node.label
        text = node.text
        for i in range(n):  # lines 6-17: case analysis per sub-query
            opcode, arg0, arg1, payload = entries[i]
            if opcode == _SELFQ:
                value = v[arg0]
            elif opcode == _CHILD:
                value = cv[arg0]
            elif opcode == _DESC:
                value = dv[arg0]
            elif opcode == _LABEL:
                value = TRUE if label == payload else FALSE
            elif opcode == _TEXT:
                value = TRUE if text == payload else FALSE
            elif opcode == _AND or opcode == _SELFSEQ:
                value = and_(v[arg0], v[arg1])
            elif opcode == _OR:
                value = or_(v[arg0], v[arg1])
            elif opcode == _NOT:
                value = not_(v[arg0])
            else:  # _EPS
                value = TRUE
            v[i] = value
            if value is not FALSE:  # line 17: DV := V or DV
                current = dv[i]
                dv[i] = value if current is FALSE else or_(value, current)
        store[node.node_id] = (v, dv)
        if node is root:
            root_cv = cv

    root_v, root_dv = store.pop(root.node_id)
    assert root_cv is not None and not store
    triplet = VectorTriplet(fragment.fragment_id, root_v, root_cv, root_dv)
    stats = BottomUpStats(
        nodes_visited=nodes_visited,
        qlist_ops=nodes_visited * n,
        wall_seconds=time.perf_counter() - started,
    )
    return triplet, stats


__all__ = ["bottom_up", "BottomUpStats", "compile_entries"]
