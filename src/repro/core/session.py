"""``QuerySession``: the batched front door to every engine.

A session owns the pieces a long-running coordinator needs to serve
many queries cheaply:

* a :class:`~repro.core.plan.QueryCache` so each distinct query text is
  parsed/normalized/compiled exactly once for the session's lifetime;
* an engine (by registry name or as a pre-built instance) whose
  :meth:`~repro.core.engine.Engine.evaluate_many` turns a planned batch
  into one set of site visits;
* a ``batch_size`` knob that chunks arbitrarily long query streams into
  bounded broadcasts (an unbounded combined QList would eventually make
  the broadcast message itself the bottleneck).

The session surface is intentionally small::

    with QuerySession(cluster, engine="parbox", batch_size=16) as session:
        outcome = session.evaluate_many(list_of_query_texts)
        outcome.answers          # one bool per input query, input order
        outcome.bytes_per_query  # the amortization headline

        watch = session.watch(list_of_query_texts)   # keep them standing
        session.rebalance(queries=list_of_query_texts,
                          maintainer=watch)          # re-place the data for them
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Union

from repro.boolexpr.compose import FormulaAlgebra
from repro.core.engine import Engine
from repro.core.plan import BatchPlan, QueryCache, plan_batch
from repro.distsim.cluster import Cluster
from repro.distsim.executors import SiteExecutor
from repro.distsim.metrics import BatchResult, EvalResult, QueryCost
from repro.distsim.trace import Trace
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.xpath.qlist import QList

Query = Union[str, QList]


@dataclass(frozen=True)
class SessionOutcome:
    """The flattened result of one :meth:`QuerySession.evaluate_many`.

    ``batches`` keeps the underlying chunk results (one
    :class:`~repro.distsim.metrics.BatchResult` per dispatched batch);
    the aggregate accessors sum over them so callers see one stream of
    N queries regardless of how it was chunked.
    """

    answers: tuple[bool, ...]
    per_query: tuple[QueryCost, ...]
    batches: tuple[BatchResult, ...] = field(repr=False)

    def __len__(self) -> int:
        return len(self.answers)

    @property
    def bytes_total(self) -> int:
        """Network bytes across every batch of the call."""
        return sum(batch.metrics.bytes_total for batch in self.batches)

    @property
    def messages_total(self) -> int:
        return sum(batch.metrics.messages for batch in self.batches)

    @property
    def visits_total(self) -> int:
        return sum(batch.metrics.total_visits() for batch in self.batches)

    @property
    def elapsed_seconds(self) -> float:
        """Simulated elapsed time: batches run one after another."""
        return sum(batch.metrics.elapsed_seconds for batch in self.batches)

    @property
    def bytes_per_query(self) -> float:
        """Amortized traffic per query -- the batching headline number."""
        return self.bytes_total / len(self.answers)

    @property
    def visits_per_query(self) -> float:
        return self.visits_total / len(self.answers)

    @property
    def messages_per_query(self) -> float:
        return self.messages_total / len(self.answers)


class QuerySession:
    """Plan, cache and batch-evaluate queries against one cluster.

    ``engine`` is a registry name (``"parbox"``, ``"fulldist"``, ...)
    or an :class:`~repro.core.engine.Engine` instance.  A session that
    *resolved* the engine from a name owns it -- :meth:`close` (or the
    context manager) tears it down, executor pool included; a pre-built
    engine belongs to its builder, mirroring the executor-ownership
    rule on :class:`~repro.core.engine.Engine` itself.

    ``batch_size`` bounds how many queries ride one combined broadcast
    (``None`` = the whole call in one batch); the compiled-query cache
    persists across calls and batches either way.
    """

    def __init__(
        self,
        cluster: Optional[Cluster],
        engine: Union[str, Engine] = "parbox",
        algebra: Optional[FormulaAlgebra] = None,
        trace: Optional[Trace] = None,
        executor: Union[str, SiteExecutor, None] = None,
        batch_size: Optional[int] = None,
        cache: Optional[QueryCache] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cluster = cluster
        self.batch_size = batch_size
        # Not `cache or ...`: a shared cache that is still empty is
        # falsy (it has a __len__) but must still be adopted.
        self.cache = cache if cache is not None else QueryCache()
        if isinstance(engine, Engine):
            # A pre-built engine already fixed its algebra, trace and
            # executor; silently ignoring these knobs would make the
            # caller believe they took effect.
            conflicting = [
                knob
                for knob, value in (
                    ("algebra", algebra),
                    ("trace", trace),
                    ("executor", executor),
                )
                if value is not None
            ]
            if conflicting:
                raise ValueError(
                    f"{', '.join(conflicting)} cannot be combined with a "
                    "pre-built engine instance; configure the engine itself"
                )
            self.engine = engine
            self._owns_engine = False
        elif engine.startswith("net:"):
            # A networked session: queries go to a gateway whose
            # coordinator owns the cluster, so none is needed (or used)
            # locally and the engine-tuning knobs live server-side.
            conflicting = [
                knob
                for knob, value in (
                    ("algebra", algebra),
                    ("trace", trace),
                    ("executor", executor),
                )
                if value is not None
            ]
            if conflicting:
                raise ValueError(
                    f"{', '.join(conflicting)} cannot be combined with a "
                    "net: engine; those knobs are configured on the gateway"
                )
            from repro.serving.client import NetEngine  # local: core stays importable alone

            self.engine = NetEngine.from_spec(engine)
            self._owns_engine = True
        else:
            if cluster is None:
                raise ValueError("a local engine needs a cluster (only net: sessions may omit it)")
            from repro.core import ENGINE_REGISTRY  # local: avoids an import cycle

            engine_cls = ENGINE_REGISTRY.get(engine.lower())
            if engine_cls is None:
                raise ValueError(
                    f"unknown engine {engine!r}; choose from "
                    f"{sorted(set(ENGINE_REGISTRY))}"
                )
            self.engine = engine_cls(cluster, algebra, trace, executor=executor)
            self._owns_engine = True

    # ------------------------------------------------------------------
    # Compilation / planning
    # ------------------------------------------------------------------
    def compile(self, query: Query) -> QList:
        """Compile one query through the session cache (texts only)."""
        return self.cache.qlist(query)

    def plan(self, queries: Sequence[Query]) -> BatchPlan:
        """Plan a batch without evaluating it (inspection, tests)."""
        return plan_batch([self.cache.qlist(query) for query in queries])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, query: Query) -> EvalResult:
        """Evaluate one query (cache-compiled, batch of one)."""
        return self.engine.evaluate_many(self.plan([query])).single()

    def evaluate_batch(self, queries: Sequence[Query]) -> BatchResult:
        """Evaluate one un-chunked batch: one combined broadcast."""
        if obs_metrics._REGISTRY is not None:
            registry = obs_metrics._REGISTRY
            registry.counter("session_batches_total", "Batches evaluated").inc()
            registry.counter("session_queries_total", "Queries evaluated").inc(
                len(queries)
            )
        # The ambient span makes executor-side spans (e.g. resident
        # workers) children of one session.batch root per batch.
        with obs_trace.span("session.batch", "session", queries=len(queries)):
            return self.engine.evaluate_many(self.plan(queries))

    def evaluate_many(self, queries: Iterable[Query]) -> SessionOutcome:
        """Evaluate a query stream, chunked to ``batch_size`` per batch."""
        if isinstance(queries, str):
            raise TypeError(
                "evaluate_many takes a sequence of queries; "
                "use evaluate() for a single query text"
            )
        query_list = list(queries)
        if not query_list:
            raise ValueError("evaluate_many needs at least one query")
        step = self.batch_size or len(query_list)
        batches = [
            self.evaluate_batch(query_list[start : start + step])
            for start in range(0, len(query_list), step)
        ]
        # Re-index the per-query rows from batch-local to stream-local,
        # so per_query[i] always describes the i-th input query.
        per_query: list[QueryCost] = []
        for batch in batches:
            offset = len(per_query)
            per_query.extend(
                replace(cost, index=cost.index + offset) for cost in batch.per_query
            )
        return SessionOutcome(
            answers=tuple(answer for batch in batches for answer in batch.answers),
            per_query=tuple(per_query),
            batches=tuple(batches),
        )

    def _require_local(self, operation: str) -> None:
        """Topology-touching operations need the cluster in-process.

        A ``net:`` session holds neither the cluster nor a local
        algebra/executor to maintain standing queries with; those
        operations belong on the gateway side of the wire.
        """
        if self.cluster is None or not isinstance(self.engine, Engine):
            raise RuntimeError(
                f"{operation}() needs a local engine over a cluster; "
                "a net: session only evaluates queries"
            )

    # ------------------------------------------------------------------
    # Stream mode
    # ------------------------------------------------------------------
    def watch(
        self,
        queries: Sequence[Query],
        names: Optional[Sequence[str]] = None,
    ) -> "StreamMaintainer":  # noqa: F821 - imported lazily below
        """Keep ``queries`` standing and maintain them under updates.

        The session's batch mode answers a stream of queries once;
        *watch* mode turns the same queries into standing subscriptions
        on a :class:`~repro.stream.maintainer.StreamMaintainer` that
        shares this session's compiled-query cache and the engine's
        site executor (so dirty-site refreshes run under the session's
        execution strategy).  Apply update batches with
        ``maintainer.apply([...])`` and read answer flips off
        ``maintainer.changefeed``; the caller owns the handle (closing
        it never tears down the shared executor).

        ``names`` labels the subscriptions (default: the query texts,
        or ``q<i>`` for pre-compiled QLists).
        """
        self._require_local("watch")
        from repro.stream.maintainer import StreamMaintainer  # local: keeps core free of stream

        query_list = list(queries)
        if not query_list:
            raise ValueError("watch needs at least one query")
        if names is None:
            # Default names from the texts, suffixed on repeats so a
            # popular subscription arriving twice still registers (the
            # planner dedups them onto one segment regardless).
            counts: dict[str, int] = {}
            names = []
            for index, query in enumerate(query_list):
                base = query if isinstance(query, str) else f"q{index}"
                seen = counts.get(base, 0)
                counts[base] = seen + 1
                names.append(base if seen == 0 else f"{base}#{seen + 1}")
        name_list = list(names)
        if len(name_list) != len(query_list):
            raise ValueError("names and queries must have the same length")
        maintainer = StreamMaintainer(
            self.cluster,
            algebra=self.engine.algebra,
            executor=self.engine.executor,
            cache=self.cache,
        )
        for name, query in zip(name_list, query_list):
            maintainer.subscribe(name, query)
        return maintainer

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def rebalance(
        self,
        queries: Optional[Sequence[Query]] = None,
        update_rates: Optional[dict] = None,
        workload: Optional["Workload"] = None,  # noqa: F821 - imported lazily below
        maintainer: Optional["StreamMaintainer"] = None,  # noqa: F821
        constraints: Optional["Constraints"] = None,  # noqa: F821
    ) -> "RebalanceOutcome":  # noqa: F821
        """Optimize this cluster's placement for a workload and enact it.

        The write-path counterpart of :meth:`evaluate_many` and
        :meth:`watch`: where those *read* the cluster topology, this
        one rewrites it.  The workload is either given ready-made
        (``workload=``) or built from ``queries`` (compiled through the
        session cache, duplicates folding into weights) plus optional
        per-fragment ``update_rates``.  The optimizer
        (:func:`~repro.placement.optimizer.optimize_placement`)
        searches move/split/merge actions under ``constraints``; the
        plan is then enacted -- through ``maintainer`` when standing
        queries must stay live (pass the handle :meth:`watch` returned;
        answers are preserved bitwise while the data migrates), or
        straight onto the cluster otherwise.  Returns the
        :class:`~repro.placement.rebalancer.RebalanceOutcome` tying the
        plan to the migrations that really shipped.
        """
        self._require_local("rebalance")
        from repro.placement import (  # local: keeps core importable without placement
            Workload,
            enact_plan,
            optimize_placement,
        )

        if workload is None:
            if queries is None:
                raise ValueError("pass queries= (or a ready workload=)")
            workload = Workload.from_queries(
                queries, cache=self.cache, update_rates=update_rates
            )
        elif queries is not None or update_rates is not None:
            raise ValueError("pass either workload= or queries=/update_rates=, not both")
        plan = optimize_placement(self.cluster, workload, constraints)
        if maintainer is not None:
            return enact_plan(plan, maintainer=maintainer)
        return enact_plan(plan, cluster=self.cluster)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        """The compiled-query cache's hit/miss counters."""
        return self.cache.stats()

    def close(self) -> None:
        """Tear down the engine this session built from a name."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuerySession engine={self.engine.name} "
            f"batch_size={self.batch_size} cached={len(self.cache)}>"
        )


__all__ = ["QuerySession", "SessionOutcome"]
