"""Analytic cost estimates: Fig. 4 as executable formulas.

The paper's Fig. 4 summarizes each algorithm's visits, computation and
communication asymptotically.  This module turns those rows into
*predictions* computable from catalog metadata alone (the source tree,
per-fragment sizes and the query size) -- no evaluation required:

* visit counts are exact;
* computation is exact in ``node x |QList|`` operations (the unit the
  measured :class:`~repro.distsim.metrics.Metrics` reports);
* communication is an upper bound in *formula-term* units (each vector
  entry carries at most ``1 + 3·card(F_j)`` terms after
  canonicalization: a constant plus the V/DV variables of each virtual
  node, each possibly negated).

``tests/test_estimates.py`` checks every prediction against measured
runs, which is precisely the "performance guarantees" claim of the
paper made mechanical.

Beyond the per-query rows of Fig. 4, this module also predicts the
aggregate cost of a *workload* -- a weighted mix of standing queries
plus a per-fragment update-rate profile -- against any candidate
decomposition/placement, without building it:

* :class:`Catalog` is the metadata a coordinator's catalog would hold
  (per-fragment sizes, sub-fragment counts, wire bytes, the fragment
  tree shape and the placement), snapshotted from a live cluster or
  derived *functionally* from another catalog by a hypothetical
  move/split/merge -- which is what lets the placement optimizer
  (:mod:`repro.placement`) search thousands of candidate placements in
  metadata space;
* :func:`estimate_workload` turns a catalog plus a workload profile
  into a :class:`WorkloadEstimate`: predicted steady-state query and
  maintenance communication (in formula-term units) and the per-site
  load profile the balance/capacity constraints are checked against.

The prediction's job is *ranking* candidate placements, and the
``placement`` benchmark checks exactly that: the predicted ordering of
candidate placements must match the measured ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.distsim.cluster import Cluster
from repro.xpath.qlist import QList


@dataclass(frozen=True)
class CostEstimate:
    """Predicted costs of one evaluation."""

    algorithm: str
    max_visits_per_site: int
    total_visits: int
    total_ops: int
    parallel_ops: int
    communication_terms: int

    def as_dict(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "max_visits_per_site": self.max_visits_per_site,
            "total_visits": self.total_visits,
            "total_ops": self.total_ops,
            "parallel_ops": self.parallel_ops,
            "communication_terms": self.communication_terms,
        }


def _sizes(cluster: Cluster) -> dict[str, int]:
    return {fid: f.size() for fid, f in cluster.fragmented_tree.fragments.items()}


def _max_site_load(cluster: Cluster) -> int:
    """max_Si |F_Si|: the largest cumulative fragment size at one site."""
    source_tree = cluster.source_tree()
    sizes = _sizes(cluster)
    return max(
        sum(sizes[fid] for fid in source_tree.fragments_of(site_id))
        for site_id in source_tree.sites()
    )


def _triplet_terms(cluster: Cluster, qlist: QList, fragment_id: str) -> int:
    """Worst-case terms in one fragment's triplet: 3|q|(1 + 3 card(F_j))."""
    card_j = len(cluster.fragmented_tree.fragments[fragment_id].sub_fragment_ids())
    return 3 * len(qlist) * (1 + 3 * card_j)


def estimate_parbox(cluster: Cluster, qlist: QList) -> CostEstimate:
    """ParBoX row of Fig. 4.

    Visits: 1 per site.  Total computation: |q||T| plus the equation
    system of size O(|q| card(F)).  Parallel computation: the largest
    per-site load.  Communication: query broadcast + one triplet per
    non-coordinator fragment.
    """
    source_tree = cluster.source_tree()
    sites = source_tree.sites()
    n = len(qlist)
    total_ops = n * cluster.total_size()
    parallel_ops = n * _max_site_load(cluster)
    coordinator = source_tree.coordinator_site
    communication = sum(
        n + _triplet_terms(cluster, qlist, fid)
        for fid in source_tree.fragment_ids()
        if source_tree.site_of(fid) != coordinator
    )
    return CostEstimate(
        algorithm="ParBoX",
        max_visits_per_site=1,
        total_visits=len(sites),
        total_ops=total_ops,
        parallel_ops=parallel_ops,
        communication_terms=communication,
    )


def estimate_naive_centralized(cluster: Cluster, qlist: QList) -> CostEstimate:
    """NaiveCentralized row: ships O(|T|) data, computes centrally."""
    source_tree = cluster.source_tree()
    coordinator = source_tree.coordinator_site
    remote_sites = [s for s in source_tree.sites() if s != coordinator]
    sizes = _sizes(cluster)
    shipped_nodes = sum(
        sizes[fid]
        for fid in source_tree.fragment_ids()
        if source_tree.site_of(fid) != coordinator
    )
    total_ops = len(qlist) * cluster.total_size()
    return CostEstimate(
        algorithm="NaiveCentralized",
        max_visits_per_site=1 if remote_sites else 0,
        total_visits=len(remote_sites),
        total_ops=total_ops,
        parallel_ops=total_ops,  # no parallelism: everything at the coordinator
        communication_terms=shipped_nodes,
    )


def estimate_naive_distributed(cluster: Cluster, qlist: QList) -> CostEstimate:
    """NaiveDistributed row: card(F_Si) visits, sequential computation."""
    source_tree = cluster.source_tree()
    per_site = {
        site_id: len(source_tree.fragments_of(site_id)) for site_id in source_tree.sites()
    }
    n = len(qlist)
    total_ops = n * cluster.total_size()
    coordinator = source_tree.coordinator_site
    communication = 0
    for fid in source_tree.fragment_ids():
        parent = source_tree.parent_of(fid)
        caller = source_tree.site_of(parent) if parent else coordinator
        if source_tree.site_of(fid) != caller:
            communication += n + 3 * n  # query/control down, ground triplet up
    return CostEstimate(
        algorithm="NaiveDistributed",
        max_visits_per_site=max(per_site.values()),
        total_visits=sum(per_site.values()),
        total_ops=total_ops,
        parallel_ops=total_ops,  # fully sequential
        communication_terms=communication,
    )


def estimate_lazy_worst_case(cluster: Cluster, qlist: QList) -> CostEstimate:
    """LazyParBoX row, worst case (descends the full source tree).

    Parallel cost: per the paper, only fragments at the same depth run
    in parallel, so the bound is the sum over depths of the largest
    fragment at that depth -- O(|q| card(F) max|F_i|) in Fig. 4.
    """
    source_tree = cluster.source_tree()
    sizes = _sizes(cluster)
    n = len(qlist)
    per_site_visits: dict[str, int] = {}
    parallel_nodes = 0
    depth = 0
    while True:
        fragment_ids = source_tree.fragments_at_depth(depth)
        if not fragment_ids:
            break
        # Step 0 covers depths 0 and 1 together.
        for fid in fragment_ids:
            site = source_tree.site_of(fid)
            per_site_visits[site] = per_site_visits.get(site, 0) + 1
        parallel_nodes += max(sizes[fid] for fid in fragment_ids)
        depth += 1
    coordinator = source_tree.coordinator_site
    communication = sum(
        n + _triplet_terms(cluster, qlist, fid)
        for fid in source_tree.fragment_ids()
        if source_tree.site_of(fid) != coordinator
    )
    return CostEstimate(
        algorithm="LazyParBoX",
        max_visits_per_site=max(per_site_visits.values()),
        total_visits=sum(per_site_visits.values()),
        total_ops=n * cluster.total_size(),
        parallel_ops=n * parallel_nodes,
        communication_terms=communication,
    )


def estimate_maintenance(cluster: Cluster, qlist: QList, fragment_id: str) -> CostEstimate:
    """Section 5 bounds for refreshing one fragment's triplet."""
    n = len(qlist)
    size = cluster.fragmented_tree.fragments[fragment_id].size()
    ops = n * size
    return CostEstimate(
        algorithm="maintenance",
        max_visits_per_site=1,
        total_visits=1,
        total_ops=ops,
        parallel_ops=ops,
        communication_terms=_triplet_terms(cluster, qlist, fragment_id),
    )


# ---------------------------------------------------------------------------
# Workload-weighted aggregate predictions (the placement optimizer's objective)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Catalog:
    """The coordinator-side metadata of one decomposition + placement.

    Everything the Fig. 4 estimators consume, and nothing more: sizes,
    sub-fragment shape, wire bytes and the ``h`` map.  Snapshot a live
    cluster with :meth:`from_cluster`; derive hypothetical states with
    :meth:`with_move` / :meth:`with_split` / :meth:`with_merge`, which
    return *new* catalogs in O(card(F)) without touching any XML --
    the whole point: the optimizer explores placements in metadata
    space and only the chosen plan ever moves real data.
    """

    sizes: Mapping[str, int]  # fragment id -> |F_j| (non-virtual nodes)
    children: Mapping[str, tuple[str, ...]]  # fragment id -> direct sub-fragments
    site_of: Mapping[str, str]  # the placement h
    wire_bytes: Mapping[str, int]  # fragment id -> shipping cost in bytes
    root_fragment_id: str

    @classmethod
    def from_cluster(cls, cluster: Cluster) -> "Catalog":
        """Snapshot the catalog metadata of a live cluster."""
        fragments = cluster.fragmented_tree.fragments
        return cls(
            sizes={fid: f.size() for fid, f in fragments.items()},
            children={fid: tuple(f.sub_fragment_ids()) for fid, f in fragments.items()},
            site_of={fid: cluster.site_of(fid) for fid in fragments},
            wire_bytes={fid: f.wire_bytes() for fid, f in fragments.items()},
            root_fragment_id=cluster.fragmented_tree.root_fragment_id,
        )

    # -- shape / placement accessors -----------------------------------
    def fragment_ids(self) -> list[str]:
        return list(self.sizes)

    @property
    def coordinator(self) -> str:
        """The coordinator site: wherever the root fragment lives."""
        return self.site_of[self.root_fragment_id]

    def card_of(self, fragment_id: str) -> int:
        """``card(F_j)``: the fragment's direct sub-fragment count."""
        return len(self.children[fragment_id])

    def sites(self) -> list[str]:
        """Distinct sites, in first-appearance order."""
        seen: dict[str, None] = {}
        for fragment_id in self.sizes:
            seen.setdefault(self.site_of[fragment_id])
        return list(seen)

    def site_loads(self) -> dict[str, int]:
        """Cumulative node count per site (the paper's |F_Si|)."""
        loads: dict[str, int] = {}
        for fragment_id, size in self.sizes.items():
            site = self.site_of[fragment_id]
            loads[site] = loads.get(site, 0) + size
        return loads

    def total_size(self) -> int:
        return sum(self.sizes.values())

    # -- functional updates (hypothetical rebalancing actions) ---------
    def with_move(self, fragment_id: str, target_site: str) -> "Catalog":
        """The catalog after ``moveFragments(fragment_id, target_site)``."""
        site_of = dict(self.site_of)
        site_of[fragment_id] = target_site
        return Catalog(self.sizes, self.children, site_of, self.wire_bytes, self.root_fragment_id)

    def with_split(
        self,
        fragment_id: str,
        new_fragment_id: str,
        subtree_size: int,
        subtree_bytes: int,
        moved_children: Sequence[str] = (),
        target_site: Optional[str] = None,
    ) -> "Catalog":
        """The catalog after carving ``subtree_size`` nodes out of a fragment.

        ``moved_children`` are the sub-fragments whose virtual leaves sit
        inside the carved subtree: they re-parent onto the new fragment.
        The new fragment lands on ``target_site`` (default: stays put).
        """
        sizes = dict(self.sizes)
        sizes[fragment_id] = sizes[fragment_id] - subtree_size
        sizes[new_fragment_id] = subtree_size
        wire = dict(self.wire_bytes)
        wire[fragment_id] = max(0, wire[fragment_id] - subtree_bytes)
        wire[new_fragment_id] = subtree_bytes
        children = dict(self.children)
        moved = set(moved_children)
        children[fragment_id] = tuple(
            child for child in children[fragment_id] if child not in moved
        ) + (new_fragment_id,)
        children[new_fragment_id] = tuple(moved_children)
        site_of = dict(self.site_of)
        site_of[new_fragment_id] = target_site or site_of[fragment_id]
        return Catalog(sizes, children, site_of, wire, self.root_fragment_id)

    def with_merge(self, parent_id: str, child_id: str) -> "Catalog":
        """The catalog after ``mergeFragments`` absorbs a sub-fragment."""
        sizes = dict(self.sizes)
        sizes[parent_id] = sizes[parent_id] + sizes.pop(child_id)
        wire = dict(self.wire_bytes)
        wire[parent_id] = wire[parent_id] + wire.pop(child_id)
        children = dict(self.children)
        grafted: list[str] = []
        for sub in children[parent_id]:
            if sub == child_id:
                grafted.extend(children[child_id])  # grandchildren re-parent
            else:
                grafted.append(sub)
        children[parent_id] = tuple(grafted)
        del children[child_id]
        site_of = dict(self.site_of)
        del site_of[child_id]
        return Catalog(sizes, children, site_of, wire, self.root_fragment_id)


@dataclass(frozen=True)
class WorkloadEstimate:
    """Predicted steady-state cost of one workload on one catalog.

    All communication figures are in formula-term units (the same unit
    the Fig. 4 rows use), so they rank placements rather than predict
    absolute bytes; ``site_loads`` feeds the optimizer's balance and
    capacity constraints.
    """

    query_terms: float  # weighted remote-triplet terms of the query mix
    update_terms: float  # weighted remote-delta terms of the update mix
    site_loads: dict[str, int] = field(repr=False)

    @property
    def max_site_load(self) -> int:
        """The paper's ``max |F_Si|``: the parallel-computation bound."""
        return max(self.site_loads.values()) if self.site_loads else 0

    def total(self) -> float:
        """The scalar objective the optimizer minimizes."""
        return self.query_terms + self.update_terms

    def as_dict(self) -> dict:
        return {
            "query_terms": self.query_terms,
            "update_terms": self.update_terms,
            "total_terms": self.total(),
            "max_site_load": self.max_site_load,
            "sites": len(self.site_loads),
        }


def estimate_workload(
    catalog: Catalog,
    query_mix: Sequence[tuple[int, float]],
    update_rates: Optional[Mapping[str, float]] = None,
) -> WorkloadEstimate:
    """Workload-weighted aggregate of the ParBoX rows of Fig. 4.

    ``query_mix`` is the standing book as ``(|QList|, weight)`` pairs
    (weight = how often the query is asked, or how many subscriptions
    ride it); ``update_rates`` maps fragment ids to expected updates
    per workload epoch.  Per *remote* fragment (site != coordinator):

    * each query of size ``n`` ships its ``n``-entry broadcast slice
      plus a worst-case triplet of ``3n(1 + 3 card(F_j))`` terms, i.e.
      ``n(4 + 9 card(F_j))`` terms per evaluation;
    * each update re-ships the fragment's slice of the whole standing
      book: ``3 N (1 + 3 card(F_j))`` terms with ``N`` the weighted
      book size (Section 5's maintenance bound).

    Fragments co-located with the coordinator contribute **zero**
    communication -- intra-site messages are free in the network model
    and in reality -- which is exactly the lever the optimizer pulls,
    bounded by the capacity/balance constraints on ``site_loads``.
    Rates for fragments unknown to the catalog (e.g. merged away in a
    hypothetical state) are ignored.
    """
    rates = update_rates or {}
    coordinator = catalog.coordinator
    weighted_entries = sum(n * w for n, w in query_mix)
    query_terms = 0.0
    update_terms = 0.0
    for fragment_id in catalog.fragment_ids():
        if catalog.site_of[fragment_id] == coordinator:
            continue
        card_j = catalog.card_of(fragment_id)
        query_terms += weighted_entries * (4 + 9 * card_j)
        rate = rates.get(fragment_id, 0.0)
        if rate:
            update_terms += rate * 3 * weighted_entries * (1 + 3 * card_j)
    return WorkloadEstimate(
        query_terms=query_terms,
        update_terms=update_terms,
        site_loads=catalog.site_loads(),
    )


#: All estimators keyed like the engines they predict.
ESTIMATORS = {
    "ParBoX": estimate_parbox,
    "NaiveCentralized": estimate_naive_centralized,
    "NaiveDistributed": estimate_naive_distributed,
    "LazyParBoX": estimate_lazy_worst_case,
}

__all__ = [
    "CostEstimate",
    "estimate_parbox",
    "estimate_naive_centralized",
    "estimate_naive_distributed",
    "estimate_lazy_worst_case",
    "estimate_maintenance",
    "Catalog",
    "WorkloadEstimate",
    "estimate_workload",
    "ESTIMATORS",
]
