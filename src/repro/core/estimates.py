"""Analytic cost estimates: Fig. 4 as executable formulas.

The paper's Fig. 4 summarizes each algorithm's visits, computation and
communication asymptotically.  This module turns those rows into
*predictions* computable from catalog metadata alone (the source tree,
per-fragment sizes and the query size) -- no evaluation required:

* visit counts are exact;
* computation is exact in ``node x |QList|`` operations (the unit the
  measured :class:`~repro.distsim.metrics.Metrics` reports);
* communication is an upper bound in *formula-term* units (each vector
  entry carries at most ``1 + 3·card(F_j)`` terms after
  canonicalization: a constant plus the V/DV variables of each virtual
  node, each possibly negated).

``tests/test_estimates.py`` checks every prediction against measured
runs, which is precisely the "performance guarantees" claim of the
paper made mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distsim.cluster import Cluster
from repro.xpath.qlist import QList


@dataclass(frozen=True)
class CostEstimate:
    """Predicted costs of one evaluation."""

    algorithm: str
    max_visits_per_site: int
    total_visits: int
    total_ops: int
    parallel_ops: int
    communication_terms: int

    def as_dict(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "algorithm": self.algorithm,
            "max_visits_per_site": self.max_visits_per_site,
            "total_visits": self.total_visits,
            "total_ops": self.total_ops,
            "parallel_ops": self.parallel_ops,
            "communication_terms": self.communication_terms,
        }


def _sizes(cluster: Cluster) -> dict[str, int]:
    return {fid: f.size() for fid, f in cluster.fragmented_tree.fragments.items()}


def _max_site_load(cluster: Cluster) -> int:
    """max_Si |F_Si|: the largest cumulative fragment size at one site."""
    source_tree = cluster.source_tree()
    sizes = _sizes(cluster)
    return max(
        sum(sizes[fid] for fid in source_tree.fragments_of(site_id))
        for site_id in source_tree.sites()
    )


def _triplet_terms(cluster: Cluster, qlist: QList, fragment_id: str) -> int:
    """Worst-case terms in one fragment's triplet: 3|q|(1 + 3 card(F_j))."""
    card_j = len(cluster.fragmented_tree.fragments[fragment_id].sub_fragment_ids())
    return 3 * len(qlist) * (1 + 3 * card_j)


def estimate_parbox(cluster: Cluster, qlist: QList) -> CostEstimate:
    """ParBoX row of Fig. 4.

    Visits: 1 per site.  Total computation: |q||T| plus the equation
    system of size O(|q| card(F)).  Parallel computation: the largest
    per-site load.  Communication: query broadcast + one triplet per
    non-coordinator fragment.
    """
    source_tree = cluster.source_tree()
    sites = source_tree.sites()
    n = len(qlist)
    total_ops = n * cluster.total_size()
    parallel_ops = n * _max_site_load(cluster)
    coordinator = source_tree.coordinator_site
    communication = sum(
        n + _triplet_terms(cluster, qlist, fid)
        for fid in source_tree.fragment_ids()
        if source_tree.site_of(fid) != coordinator
    )
    return CostEstimate(
        algorithm="ParBoX",
        max_visits_per_site=1,
        total_visits=len(sites),
        total_ops=total_ops,
        parallel_ops=parallel_ops,
        communication_terms=communication,
    )


def estimate_naive_centralized(cluster: Cluster, qlist: QList) -> CostEstimate:
    """NaiveCentralized row: ships O(|T|) data, computes centrally."""
    source_tree = cluster.source_tree()
    coordinator = source_tree.coordinator_site
    remote_sites = [s for s in source_tree.sites() if s != coordinator]
    sizes = _sizes(cluster)
    shipped_nodes = sum(
        sizes[fid]
        for fid in source_tree.fragment_ids()
        if source_tree.site_of(fid) != coordinator
    )
    total_ops = len(qlist) * cluster.total_size()
    return CostEstimate(
        algorithm="NaiveCentralized",
        max_visits_per_site=1 if remote_sites else 0,
        total_visits=len(remote_sites),
        total_ops=total_ops,
        parallel_ops=total_ops,  # no parallelism: everything at the coordinator
        communication_terms=shipped_nodes,
    )


def estimate_naive_distributed(cluster: Cluster, qlist: QList) -> CostEstimate:
    """NaiveDistributed row: card(F_Si) visits, sequential computation."""
    source_tree = cluster.source_tree()
    per_site = {
        site_id: len(source_tree.fragments_of(site_id)) for site_id in source_tree.sites()
    }
    n = len(qlist)
    total_ops = n * cluster.total_size()
    coordinator = source_tree.coordinator_site
    communication = 0
    for fid in source_tree.fragment_ids():
        parent = source_tree.parent_of(fid)
        caller = source_tree.site_of(parent) if parent else coordinator
        if source_tree.site_of(fid) != caller:
            communication += n + 3 * n  # query/control down, ground triplet up
    return CostEstimate(
        algorithm="NaiveDistributed",
        max_visits_per_site=max(per_site.values()),
        total_visits=sum(per_site.values()),
        total_ops=total_ops,
        parallel_ops=total_ops,  # fully sequential
        communication_terms=communication,
    )


def estimate_lazy_worst_case(cluster: Cluster, qlist: QList) -> CostEstimate:
    """LazyParBoX row, worst case (descends the full source tree).

    Parallel cost: per the paper, only fragments at the same depth run
    in parallel, so the bound is the sum over depths of the largest
    fragment at that depth -- O(|q| card(F) max|F_i|) in Fig. 4.
    """
    source_tree = cluster.source_tree()
    sizes = _sizes(cluster)
    n = len(qlist)
    per_site_visits: dict[str, int] = {}
    parallel_nodes = 0
    depth = 0
    while True:
        fragment_ids = source_tree.fragments_at_depth(depth)
        if not fragment_ids:
            break
        # Step 0 covers depths 0 and 1 together.
        for fid in fragment_ids:
            site = source_tree.site_of(fid)
            per_site_visits[site] = per_site_visits.get(site, 0) + 1
        parallel_nodes += max(sizes[fid] for fid in fragment_ids)
        depth += 1
    coordinator = source_tree.coordinator_site
    communication = sum(
        n + _triplet_terms(cluster, qlist, fid)
        for fid in source_tree.fragment_ids()
        if source_tree.site_of(fid) != coordinator
    )
    return CostEstimate(
        algorithm="LazyParBoX",
        max_visits_per_site=max(per_site_visits.values()),
        total_visits=sum(per_site_visits.values()),
        total_ops=n * cluster.total_size(),
        parallel_ops=n * parallel_nodes,
        communication_terms=communication,
    )


def estimate_maintenance(cluster: Cluster, qlist: QList, fragment_id: str) -> CostEstimate:
    """Section 5 bounds for refreshing one fragment's triplet."""
    n = len(qlist)
    size = cluster.fragmented_tree.fragments[fragment_id].size()
    ops = n * size
    return CostEstimate(
        algorithm="maintenance",
        max_visits_per_site=1,
        total_visits=1,
        total_ops=ops,
        parallel_ops=ops,
        communication_terms=_triplet_terms(cluster, qlist, fragment_id),
    )


#: All estimators keyed like the engines they predict.
ESTIMATORS = {
    "ParBoX": estimate_parbox,
    "NaiveCentralized": estimate_naive_centralized,
    "NaiveDistributed": estimate_naive_distributed,
    "LazyParBoX": estimate_lazy_worst_case,
}

__all__ = [
    "CostEstimate",
    "estimate_parbox",
    "estimate_naive_centralized",
    "estimate_naive_distributed",
    "estimate_lazy_worst_case",
    "estimate_maintenance",
    "ESTIMATORS",
]
