"""The NaiveCentralized baseline (paper, Section 3).

Collect all fragments at the coordinating site, reassemble the
document, run the optimal centralized algorithm.  Computation is
``O(|q||T|)`` -- as good as it gets -- but communication is ``O(|T|)``:
every remote fragment is shipped in full, every time a query runs.

Cost model: remote sites are contacted once (in parallel) and stream
their serialized fragments to the coordinator; the coordinator's
ingress link is the bottleneck, so the shipping phase takes
``latency + total_bytes / bandwidth``.  Reassembly (stitching) and the
centralized evaluation are timed as real coordinator-local work.
"""

from __future__ import annotations

from repro.core.centralized import evaluate_node_many, evaluate_tree_many
from repro.core.engine import CONTROL_BYTES, MSG_CONTROL, MSG_FRAGMENT_DATA, Engine
from repro.core.plan import BatchPlan


class NaiveCentralizedEngine(Engine):
    """Ship the data to the query."""

    name = "NaiveCentralized"

    def _evaluate_plan(self, plan: BatchPlan):
        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site

        # Contact every remote site once; it replies with its fragments.
        total_bytes = 0
        request_seconds = 0.0
        remote_sites = [s for s in source_tree.sites() if s != coordinator]
        for site_id in remote_sites:
            run.visit(site_id)
            request_seconds = max(
                request_seconds, run.message(coordinator, site_id, CONTROL_BYTES, MSG_CONTROL)
            )
            site_bytes = sum(
                self.cluster.fragment(fid).wire_bytes()
                for fid in source_tree.fragments_of(site_id)
            )
            run.message(site_id, coordinator, site_bytes, MSG_FRAGMENT_DATA)
            total_bytes += site_bytes
        # The concurrent shipments share the coordinator's ingress link,
        # which bounds the shipping phase (per-message times discarded).
        shipping_seconds = self.cluster.network.ingress_seconds(
            total_bytes, len(remote_sites)
        )

        # Local phase: stitch the document together, then evaluate it
        # once against the combined batch query.  A single-fragment
        # decomposition IS the document -- no virtual node was ever
        # cut, so it evaluates in place (the same zero-copy access a
        # ParBoX site gets) and reassembly genuinely costs nothing.
        fragmented = self.cluster.fragmented_tree
        if fragmented.card() == 1:
            root = fragmented.fragments[fragmented.root_fragment_id].root
            stitch_seconds = 0.0
            ((answers, stats), eval_seconds) = run.compute(
                coordinator,
                lambda: evaluate_node_many(root, plan.combined, plan.answer_indices),
            )
        else:
            (tree, stitch_seconds) = run.compute(coordinator, fragmented.stitch)
            ((answers, stats), eval_seconds) = run.compute(
                coordinator,
                lambda: evaluate_tree_many(tree, plan.combined, plan.answer_indices),
            )
        run.add_ops(stats.nodes_visited, stats.qlist_ops)
        for segment_index, (_, length) in enumerate(plan.segments):
            run.add_segment_ops(segment_index, stats.nodes_visited * length)

        elapsed = request_seconds + shipping_seconds + stitch_seconds + eval_seconds
        return answers, run, elapsed, dict(shipped_bytes=total_bytes)


__all__ = ["NaiveCentralizedEngine"]
