"""Hybrid ParBoX (paper, Section 4).

In the pathological regime where almost every node is its own fragment,
``card(F)`` approaches ``|T|`` and ParBoX's ``O(|q| card(F))`` traffic
exceeds NaiveCentralized's ``O(|T|)``.  Hybrid ParBoX compares
``card(F)`` against the tipping point ``|T| / |q|``:

* ``card(F) < |T| / |q|``  ->  run ParBoX (the common case);
* otherwise               ->  fall back to NaiveCentralized.

``|T|`` and ``card(F)`` come from the coordinator's catalog (the source
tree and the per-fragment size statistics sites report when fragments
are placed) -- no extra round-trip is needed to decide.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.boolexpr.compose import FormulaAlgebra
from repro.core.engine import Engine
from repro.core.naive_centralized import NaiveCentralizedEngine
from repro.core.parbox import ParBoXEngine
from repro.core.plan import BatchPlan, coerce_plan
from repro.distsim.cluster import Cluster
from repro.distsim.executors import SiteExecutor
from repro.distsim.metrics import BatchResult
from repro.distsim.trace import Trace
from repro.xpath.qlist import QList


class HybridParBoXEngine(Engine):
    """Switches between ParBoX and NaiveCentralized at the tipping point."""

    name = "HybridParBoX"

    def __init__(
        self,
        cluster: Cluster,
        algebra: Optional[FormulaAlgebra] = None,
        trace: Optional[Trace] = None,
        executor: Union[str, SiteExecutor, None] = None,
    ) -> None:
        super().__init__(cluster, algebra, trace, executor=executor)
        # Both delegates share this engine's resolved executor, so a
        # process pool forks once no matter which branch wins.
        self._parbox = ParBoXEngine(cluster, algebra, trace, executor=self.executor)
        self._central = NaiveCentralizedEngine(cluster, algebra, trace, executor=self.executor)
        self._delegates_closed = False

    def choose_strategy(self, qlist: QList) -> str:
        """The switching rule: ``card(F) < |T|/|q|`` favours ParBoX.

        Under batching ``|q|`` is the *combined* query size: a big
        enough batch genuinely moves the tipping point, because the
        broadcast grows with the batch while the shipped data does not.
        """
        card = self.cluster.card()
        tree_size = self.cluster.total_size()
        query_size = len(qlist)
        return "parbox" if card < tree_size / query_size else "centralized"

    def evaluate_many(
        self, batch: Union[BatchPlan, Iterable[Union[str, QList]]]
    ) -> BatchResult:
        """Pick the strategy once per batch and delegate the whole plan."""
        plan = coerce_plan(batch)
        strategy = self.choose_strategy(plan.combined)
        delegate = self._parbox if strategy == "parbox" else self._central
        inner = delegate.evaluate_many(plan)
        details = dict(inner.details)
        details["strategy"] = strategy
        return BatchResult(
            answers=inner.answers,
            engine=self.name,
            metrics=inner.metrics,
            per_query=inner.per_query,
            details=details,
        )

    def close(self) -> None:
        """Close the delegate engines exactly once, then the shared pool.

        The delegates hold this engine's resolved executor as a
        pre-built instance, so closing them never touches the shared
        pool (the :meth:`Engine.close` ownership rule); what they *do*
        own -- e.g. the thread pools ParBoX caches for
        ``evaluate_threaded`` -- is reaped here.  The guard makes
        repeated ``close()`` calls hit each delegate only once.
        """
        if not self._delegates_closed:
            self._delegates_closed = True
            self._parbox.close()
            self._central.close()
        super().close()


__all__ = ["HybridParBoXEngine"]
