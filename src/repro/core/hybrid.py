"""Hybrid ParBoX (paper, Section 4).

In the pathological regime where almost every node is its own fragment,
``card(F)`` approaches ``|T|`` and ParBoX's ``O(|q| card(F))`` traffic
exceeds NaiveCentralized's ``O(|T|)``.  Hybrid ParBoX compares
``card(F)`` against the tipping point ``|T| / |q|``:

* ``card(F) < |T| / |q|``  ->  run ParBoX (the common case);
* otherwise               ->  fall back to NaiveCentralized.

``|T|`` and ``card(F)`` come from the coordinator's catalog (the source
tree and the per-fragment size statistics sites report when fragments
are placed) -- no extra round-trip is needed to decide.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.boolexpr.compose import FormulaAlgebra
from repro.core.engine import Engine
from repro.core.naive_centralized import NaiveCentralizedEngine
from repro.core.parbox import ParBoXEngine
from repro.distsim.cluster import Cluster
from repro.distsim.executors import SiteExecutor
from repro.distsim.metrics import EvalResult
from repro.distsim.trace import Trace
from repro.xpath.qlist import QList


class HybridParBoXEngine(Engine):
    """Switches between ParBoX and NaiveCentralized at the tipping point."""

    name = "HybridParBoX"

    def __init__(
        self,
        cluster: Cluster,
        algebra: Optional[FormulaAlgebra] = None,
        trace: Optional[Trace] = None,
        executor: Union[str, SiteExecutor, None] = None,
    ) -> None:
        super().__init__(cluster, algebra, trace, executor=executor)
        # Both delegates share this engine's resolved executor, so a
        # process pool forks once no matter which branch wins.
        self._parbox = ParBoXEngine(cluster, algebra, trace, executor=self.executor)
        self._central = NaiveCentralizedEngine(cluster, algebra, trace, executor=self.executor)

    def choose_strategy(self, qlist: QList) -> str:
        """The switching rule: ``card(F) < |T|/|q|`` favours ParBoX."""
        card = self.cluster.card()
        tree_size = self.cluster.total_size()
        query_size = len(qlist)
        return "parbox" if card < tree_size / query_size else "centralized"

    def evaluate(self, qlist: QList) -> EvalResult:
        strategy = self.choose_strategy(qlist)
        delegate = self._parbox if strategy == "parbox" else self._central
        inner = delegate.evaluate(qlist)
        details = dict(inner.details)
        details["strategy"] = strategy
        return EvalResult(
            answer=inner.answer,
            engine=self.name,
            metrics=inner.metrics,
            details=details,
        )


__all__ = ["HybridParBoXEngine"]
