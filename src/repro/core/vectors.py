"""The ``(V, CV, DV)`` vector triplet -- a fragment's partial answer.

For a fragment ``F_j`` and query list ``qL`` of length *n*, partial
evaluation returns three vectors of Boolean formulas (paper, Fig. 3(b)):

* ``V[i]``  -- value of sub-query ``qL[i]`` at the **root** of ``F_j``;
* ``CV[i]`` -- true iff some *child* of the root satisfies ``qL[i]``;
* ``DV[i]`` -- true iff the root or some *descendant* satisfies ``qL[i]``.

Entries are formulas over the variables of ``F_j``'s virtual nodes
(``Var(F_k, kind, i)``); a triplet with no sub-fragments is ground.
"""

from __future__ import annotations

import json
import pickle
from typing import Iterable, Mapping

from repro.boolexpr.formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Not,
    Or,
    Var,
    const,
    formula_from_obj,
)


class VectorTriplet:
    """The partial answer of one fragment (immutable value object)."""

    __slots__ = ("fragment_id", "v", "cv", "dv")

    def __init__(
        self,
        fragment_id: str,
        v: Iterable[Formula],
        cv: Iterable[Formula],
        dv: Iterable[Formula],
    ) -> None:
        self.fragment_id = fragment_id
        self.v = tuple(v)
        self.cv = tuple(cv)
        self.dv = tuple(dv)
        if not (len(self.v) == len(self.cv) == len(self.dv)):
            raise ValueError("V, CV, DV must have equal length")

    def __len__(self) -> int:
        return len(self.v)

    # ------------------------------------------------------------------
    # Variables / groundness
    # ------------------------------------------------------------------
    def variables(self) -> frozenset[Var]:
        """All free variables across the three vectors.

        Accumulates into one mutable set and freezes once; the previous
        per-formula ``frozenset | frozenset`` rebuild was quadratic in
        the vector length.  Each formula's own variable set is cached on
        the (interned) formula, so this is a union of ready sets.
        """
        out: set[Var] = set()
        for vector in (self.v, self.cv, self.dv):
            for formula in vector:
                vars_ = formula.variables()
                if vars_:
                    out.update(vars_)
        return frozenset(out)

    def referenced_fragments(self) -> frozenset[str]:
        """Ids of the sub-fragments whose variables appear."""
        return frozenset(var.owner for var in self.variables())

    def is_ground(self) -> bool:
        """True when no variables remain (leaf fragments, resolved triplets)."""
        return not self.variables()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def substitute(self, env: Mapping[Var, Formula]) -> "VectorTriplet":
        """Replace variables, yielding a new (possibly ground) triplet."""
        return VectorTriplet(
            self.fragment_id,
            (formula.substitute(env) for formula in self.v),
            (formula.substitute(env) for formula in self.cv),
            (formula.substitute(env) for formula in self.dv),
        )

    def binding_env(self) -> dict[Var, Formula]:
        """The variable bindings this triplet *provides* to its parent.

        For every index ``i``, maps ``Var(F_j, 'V', i) -> V[i]`` and
        likewise for CV/DV.  Used when resolving a parent's triplet from
        its children's (NaiveDistributed, FullDistParBoX, evalST).
        """
        env: dict[Var, Formula] = {}
        for index in range(len(self.v)):
            env[Var(self.fragment_id, "V", index)] = self.v[index]
            env[Var(self.fragment_id, "CV", index)] = self.cv[index]
            env[Var(self.fragment_id, "DV", index)] = self.dv[index]
        return env

    def shifted(self, delta: int) -> "VectorTriplet":
        """Shift every variable's QList index by ``delta`` (entries as-is).

        Re-bases a triplet between a segment's local index space and
        its position inside a combined batch QList.  Sound because the
        batch planner offsets whole segments: all of a slice's
        variables move by the same amount, which preserves the
        canonical operand order inside every formula.
        """
        if delta == 0:
            return self

        def shift(formula: Formula) -> Formula:
            env = {
                var: Var(var.owner, var.kind, var.index + delta)
                for var in formula.variables()
            }
            return formula.substitute(env) if env else formula

        return VectorTriplet(
            self.fragment_id,
            (shift(formula) for formula in self.v),
            (shift(formula) for formula in self.cv),
            (shift(formula) for formula in self.dv),
        )

    def sliced(self, offset: int, length: int) -> "VectorTriplet":
        """The ``[offset, offset+length)`` slice, re-based to index 0.

        Because combined-QList entries only ever reference entries (and
        sub-fragment variables) of their own segment, the slice equals
        what ``bottomUp`` would have produced for that segment's
        standalone QList -- the identity the stream maintainer's
        per-segment caches are built on.
        """
        stop = offset + length
        return VectorTriplet(
            self.fragment_id,
            self.v[offset:stop],
            self.cv[offset:stop],
            self.dv[offset:stop],
        ).shifted(-offset)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_obj(self) -> dict:
        """JSON-able representation (what a site sends the coordinator)."""
        return {
            "fragment": self.fragment_id,
            "v": [formula.to_obj() for formula in self.v],
            "cv": [formula.to_obj() for formula in self.cv],
            "dv": [formula.to_obj() for formula in self.dv],
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "VectorTriplet":
        """Inverse of :meth:`to_obj`."""
        return cls(
            obj["fragment"],
            (formula_from_obj(item) for item in obj["v"]),
            (formula_from_obj(item) for item in obj["cv"]),
            (formula_from_obj(item) for item in obj["dv"]),
        )

    def wire_bytes(self) -> int:
        """Byte size of the compact JSON serialization (traffic unit).

        This is the **simulated** cost ledger's unit and is defined over
        :meth:`to_obj`, never over the compact codec below -- the
        benchmark shape checks pin exact byte counts to it.
        """
        return len(json.dumps(self.to_obj(), separators=(",", ":")).encode())

    # ------------------------------------------------------------------
    # Compact wire codec (the transport actually used across processes)
    # ------------------------------------------------------------------
    def to_compact(self) -> tuple:
        """Compact triplet encoding: ground bitmasks + hash-consed residue.

        The ground prefix -- every ``TRUE``/``FALSE`` entry, i.e. the
        whole triplet for ground fragments -- collapses into three int
        bitmasks (bit *i* set iff entry *i* is ``TRUE``).  The residual
        formulas are emitted once each through a shared table (children
        before parents, duplicates collapsed -- the wire-side mirror of
        the in-memory interning pool), and each non-constant entry is a
        ``(vector, entry, table-index)`` triple.  Used by the process
        executor's replies and thereby the ``triplet-delta`` refresh
        path; orders of magnitude cheaper to pickle than :meth:`to_obj`
        for the (dominant) ground case.  The *simulated* ledger stays on
        :meth:`wire_bytes` unchanged.
        """
        masks = []
        residues: list[tuple[int, int, int]] = []
        table: list[tuple] = []
        index_of: dict[Formula, int] = {}

        def encode(formula: Formula) -> int:
            cached = index_of.get(formula)
            if cached is not None:
                return cached
            cls = type(formula)
            if cls is Var:
                node = ("v", formula.owner, formula.kind, formula.index)
            elif cls is Not:
                node = ("n", encode(formula.child))
            elif cls is And:
                node = ("a", tuple(encode(child) for child in formula.children))
            elif cls is Or:
                node = ("o", tuple(encode(child) for child in formula.children))
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot encode {formula!r}")
            table.append(node)
            index = len(table) - 1
            index_of[formula] = index
            return index

        for vector_index, vector in enumerate((self.v, self.cv, self.dv)):
            mask = 0
            for entry_index, formula in enumerate(vector):
                if isinstance(formula, Const):
                    if formula.value:
                        mask |= 1 << entry_index
                else:
                    residues.append((vector_index, entry_index, encode(formula)))
            masks.append(mask)
        return (
            self.fragment_id,
            len(self.v),
            masks[0],
            masks[1],
            masks[2],
            tuple(residues),
            tuple(table),
        )

    @classmethod
    def from_compact(cls, wire: tuple) -> "VectorTriplet":
        """Inverse of :meth:`to_compact`.

        Rebuilds through the *raw* (interning) constructors, never the
        canonicalizing smart constructors, so the decoded formulas are
        structurally identical to what the sender held -- including
        non-canonical shapes produced by the paper-literal algebra.
        """
        fragment_id, n, v_mask, cv_mask, dv_mask, residues, table = wire
        if type(v_mask) is not int:  # out-of-band mask bytes (little-endian)
            v_mask = int.from_bytes(v_mask, "little")
        if type(cv_mask) is not int:
            cv_mask = int.from_bytes(cv_mask, "little")
        if type(dv_mask) is not int:
            dv_mask = int.from_bytes(dv_mask, "little")
        formulas: list[Formula] = []
        for node in table:
            tag = node[0]
            if tag == "v":
                formulas.append(Var(node[1], node[2], node[3]))
            elif tag == "n":
                formulas.append(Not(formulas[node[1]]))
            elif tag == "a":
                formulas.append(And(tuple(formulas[i] for i in node[1])))
            elif tag == "o":
                formulas.append(Or(tuple(formulas[i] for i in node[1])))
            else:
                raise ValueError(f"unknown compact formula tag {tag!r}")
        vectors = [
            [TRUE if mask >> i & 1 else FALSE for i in range(n)]
            for mask in (v_mask, cv_mask, dv_mask)
        ]
        for vector_index, entry_index, table_index in residues:
            vectors[vector_index][entry_index] = formulas[table_index]
        return cls(fragment_id, *vectors)

    def formula_size(self) -> int:
        """Total formula nodes across the vectors (size-bound checks)."""
        return sum(f.size() for vec in (self.v, self.cv, self.dv) for f in vec)

    # ------------------------------------------------------------------
    # Equality (incremental maintenance compares old/new triplets)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorTriplet):
            return NotImplemented
        return (
            self.fragment_id == other.fragment_id
            and self.v == other.v
            and self.cv == other.cv
            and self.dv == other.dv
        )

    def __hash__(self) -> int:
        return hash((self.fragment_id, self.v, self.cv, self.dv))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ground = "ground" if self.is_ground() else f"vars={len(self.variables())}"
        return f"<VectorTriplet {self.fragment_id} n={len(self)} {ground}>"


def ground_triplet_from_bools(
    fragment_id: str,
    v: Iterable[bool],
    cv: Iterable[bool],
    dv: Iterable[bool],
) -> VectorTriplet:
    """Build a ground triplet from plain Booleans (centralized evaluator)."""
    return VectorTriplet(
        fragment_id,
        (const(x) for x in v),
        (const(x) for x in cv),
        (const(x) for x in dv),
    )


#: Bitmasks at or above this many bytes leave the pickle stream as
#: out-of-band buffers.  Below it, a raw int pickles more compactly
#: than a ``PickleBuffer`` frame plus transport bookkeeping.
OOB_MASK_BYTES = 1 << 10


def compact_with_buffers(wire: tuple, threshold: int = OOB_MASK_BYTES) -> tuple:
    """Lift a compact triplet's large bitmasks out of the pickle stream.

    The TRUE/FALSE prefix masks of big ground fragments dominate a
    reply's payload; wrapping their little-endian bytes in
    :class:`pickle.PickleBuffer` lets a protocol-5 pickler ship them
    out-of-band (see :mod:`repro.distsim.transport`), so the bulk bytes
    are never copied through the pickle stream.
    :meth:`VectorTriplet.from_compact` accepts either form, so the
    rewrite is transparent to receivers.  The *simulated* ledger is
    untouched -- it is defined on :meth:`VectorTriplet.wire_bytes`.
    """
    fragment_id, n, v_mask, cv_mask, dv_mask, residues, table = wire
    if n < threshold * 8:  # all three masks are below threshold: no-op
        return wire

    def lift(mask: int):
        nbytes = (mask.bit_length() + 7) // 8
        if nbytes < threshold:
            return mask
        return pickle.PickleBuffer(mask.to_bytes(nbytes, "little"))

    return (fragment_id, n, lift(v_mask), lift(cv_mask), lift(dv_mask), residues, table)


__all__ = [
    "VectorTriplet",
    "ground_triplet_from_bools",
    "compact_with_buffers",
    "OOB_MASK_BYTES",
]
