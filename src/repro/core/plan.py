"""The batch planner: many queries, one combined broadcast.

The paper bounds site visits *per query*; a coordinator serving many
standing queries wants them bounded *per batch*.  The trick is purely
front-end: QList entries only ever reference earlier entries of the
same query, so concatenating several QLists with offset-shifted operand
indices yields one well-formed QList whose single ``bottomUp`` pass
computes every input query at once.  This module turns that trick
(previously private to :mod:`repro.views.registry`) into the planner
layer every engine batches through:

* :class:`QueryCache` -- memoizes the text -> AST -> normal form ->
  QList compilation pipeline, keyed by query text;
* :func:`plan_batch` / :class:`BatchPlan` -- deduplicates repeated
  queries (identical QLists collapse into one shared segment), offsets
  and concatenates the unique ones, and remembers how to slice the
  combined answer vector back into per-query answers;
* :func:`attribute_costs` -- splits a batch ledger into per-query
  :class:`~repro.distsim.metrics.QueryCost` rows (exact operation
  attribution from the planner's segments, amortized shares for the
  batch-level costs that exist once per batch).

Engines consume a :class:`BatchPlan` through
:meth:`repro.core.engine.Engine.evaluate_many`; a plan of one query is
the degenerate case and reuses the input QList unchanged, which keeps
``evaluate()`` bitwise identical to the pre-batch code path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.distsim.metrics import Metrics, QueryCost
from repro.xpath import build_qlist, normalize, parse_query
from repro.xpath.ast import BoolExpr
from repro.xpath.normalize import NBool
from repro.xpath.qlist import QEntry, QList, append_shifted


@dataclass(frozen=True)
class CompiledQuery:
    """One query text carried through the whole compilation pipeline."""

    text: str
    ast: BoolExpr
    normalized: NBool
    qlist: QList


class QueryCache:
    """Memoized text -> AST -> normal form -> QList compilation.

    A pub/sub coordinator sees the same subscription text over and over;
    re-parsing it per batch would dominate small-query workloads.  The
    cache is unbounded by design (standing queries *are* the working
    set); :meth:`stats` reports the hit rate for the benchmarks.
    """

    def __init__(self) -> None:
        self._compiled: dict[str, CompiledQuery] = {}
        self.hits = 0
        self.misses = 0

    def compile(self, text: str) -> CompiledQuery:
        """Compile ``text``, reusing the pipeline output on repeat texts."""
        cached = self._compiled.get(text)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        ast = parse_query(text)
        normalized = normalize(ast)
        qlist = build_qlist(normalized, source=text)
        compiled = CompiledQuery(text=text, ast=ast, normalized=normalized, qlist=qlist)
        self._compiled[text] = compiled
        return compiled

    def qlist(self, query: Union[str, QList]) -> QList:
        """Coerce a query (text or pre-compiled QList) to its QList."""
        if isinstance(query, QList):
            return query
        return self.compile(query).qlist

    def __len__(self) -> int:
        return len(self._compiled)

    def __contains__(self, text: str) -> bool:
        return text in self._compiled

    def stats(self) -> dict:
        """Hit/miss counters plus the resident compiled-query count."""
        total = self.hits + self.misses
        return {
            "entries": len(self._compiled),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }


@dataclass(frozen=True)
class BatchPlan:
    """How a batch of queries maps onto one combined QList.

    ``queries[i]`` answers at ``combined[answer_indices[i]]``; the
    combined entries decompose into ``segments[k] = (offset, length)``,
    one per *unique* query, and ``segment_of[i]`` names the segment
    query *i* landed in (duplicates share a segment -- and therefore a
    broadcast slice, a triplet slice and the site work for it).
    """

    combined: QList
    queries: tuple[QList, ...]
    answer_indices: tuple[int, ...]
    segments: tuple[tuple[int, int], ...]
    segment_of: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def unique_count(self) -> int:
        """Number of distinct QLists after deduplication."""
        return len(self.segments)

    def duplicate_count(self) -> int:
        """How many input queries were collapsed onto an earlier twin."""
        return len(self.queries) - len(self.segments)

    def entries_saved(self) -> int:
        """Combined-QList entries avoided by deduplication."""
        return sum(len(q) for q in self.queries) - len(self.combined)

    def queries_in_segment(self, segment_index: int) -> list[int]:
        """Input-query indices sharing one unique segment."""
        return [i for i, seg in enumerate(self.segment_of) if seg == segment_index]


def plan_batch(queries: Sequence[QList]) -> BatchPlan:
    """Plan a batch: dedupe, offset, concatenate, remember the slices.

    Two queries are duplicates when their entry tuples are identical
    (hash-consing makes the entry tuple a canonical form of the
    compiled query); the second occurrence reuses the first one's
    segment wholesale, sharing its variables and its answer entry.  A
    single-query batch reuses the input QList object unchanged.
    """
    qlists = list(queries)
    if not qlists:
        raise ValueError("cannot plan an empty batch")
    if len(qlists) == 1:
        only = qlists[0]
        return BatchPlan(
            combined=only,
            queries=(only,),
            answer_indices=(only.answer_index,),
            segments=((0, len(only)),),
            segment_of=(0,),
        )

    entries: list[QEntry] = []
    segments: list[tuple[int, int]] = []
    segment_by_shape: dict[tuple[QEntry, ...], int] = {}
    answer_indices: list[int] = []
    segment_of: list[int] = []
    sources: list[str] = []
    for qlist in qlists:
        shape = qlist.entries
        segment_index = segment_by_shape.get(shape)
        if segment_index is None:
            offset = append_shifted(entries, qlist)
            segment_index = len(segments)
            segments.append((offset, len(qlist)))
            segment_by_shape[shape] = segment_index
            sources.append(qlist.source or "?")
        offset, _ = segments[segment_index]
        answer_indices.append(offset + qlist.answer_index)
        segment_of.append(segment_index)

    combined = QList(entries, source=" + ".join(sources))
    return BatchPlan(
        combined=combined,
        queries=tuple(qlists),
        answer_indices=tuple(answer_indices),
        segments=tuple(segments),
        segment_of=tuple(segment_of),
    )


def coerce_plan(
    batch: Union[BatchPlan, Iterable[Union[str, QList]]],
    cache: Optional[QueryCache] = None,
) -> BatchPlan:
    """Accept a ready plan, or a mix of texts/QLists to plan now."""
    if isinstance(batch, BatchPlan):
        return batch
    if isinstance(batch, str):
        raise TypeError(
            "a batch is a sequence of queries; wrap a single query text "
            "in a list (or call evaluate())"
        )
    cache = cache or QueryCache()
    return plan_batch([cache.qlist(query) for query in batch])


def attribute_costs(
    plan: BatchPlan, answers: Sequence[bool], metrics: Metrics
) -> tuple[QueryCost, ...]:
    """Split a finished batch ledger into per-query cost rows.

    Attribution policy (documented on :class:`QueryCost`):

    * **qlist_ops** -- exact: the planner's segments let every site
      report ``nodes x segment-length`` operation counts per unique
      query (``metrics.segment_ops``); duplicates split their shared
      segment's count evenly.
    * **bytes** -- weighted by each query's share of the total query
      size: a 23-entry query genuinely occupies more of the broadcast
      and of the reply triplets than a 2-entry one.
    * **visits / messages / elapsed** -- amortized ``total / N``: these
      costs exist once per batch regardless of N, which is the whole
      point of batching.
    """
    n = len(plan.queries)
    total_entries = sum(len(q) for q in plan.queries)
    sharing = Counter(plan.segment_of)
    costs = []
    for index, qlist in enumerate(plan.queries):
        segment = plan.segment_of[index]
        weight = len(qlist) / total_entries if total_entries else 0.0
        costs.append(
            QueryCost(
                index=index,
                source=qlist.source,
                answer=bool(answers[index]),
                qlist_len=len(qlist),
                shared_with=sharing[segment] - 1,
                visits=metrics.total_visits() / n,
                messages=metrics.messages / n,
                bytes_sent=metrics.bytes_total * weight,
                qlist_ops=metrics.segment_ops[segment] / sharing[segment],
                elapsed_seconds=metrics.elapsed_seconds / n,
            )
        )
    return tuple(costs)


__all__ = [
    "CompiledQuery",
    "QueryCache",
    "BatchPlan",
    "plan_batch",
    "coerce_plan",
    "attribute_costs",
]
