"""Algorithm ParBoX (paper, Fig. 3(a)): the main contribution.

Three stages:

1. the coordinator reads the source tree and identifies the sites
   holding fragments;
2. each site, **in parallel**, runs ``bottomUp`` over every local
   fragment and sends all resulting triplets back in one reply -- this
   is why each site is visited exactly once regardless of how many
   fragments it stores;
3. the coordinator solves the Boolean equation system (``evalST``).

Simulated elapsed time = max over sites of
(query transfer + site compute + reply transfer) + coordinator combine;
transfers to/from the coordinator's own site are free.

``evaluate_threaded`` additionally offers a truly concurrent execution
of stage 2 on a thread pool -- it returns the same answer with wall-clock
timing instead of the simulated composition (used by the
``pubsub_filtering`` example and the backend-equivalence tests).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.core.bottom_up import bottom_up
from repro.core.engine import MSG_QUERY, MSG_TRIPLET, Engine
from repro.core.eval_st import eval_st
from repro.core.vectors import VectorTriplet
from repro.distsim.metrics import EvalResult
from repro.xpath.qlist import QList


class ParBoXEngine(Engine):
    """The Parallel Boolean XPath evaluation algorithm."""

    name = "ParBoX"

    def evaluate(self, qlist: QList) -> EvalResult:
        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site
        query_bytes = qlist.wire_bytes()

        triplets: dict[str, VectorTriplet] = {}
        site_finish: dict[str, float] = {}
        for site_id in source_tree.sites():  # stage 1: identify sites
            run.visit(site_id)
            request_seconds = run.message(coordinator, site_id, query_bytes, MSG_QUERY)

            # Stage 2 (evalQual): the site evaluates every local fragment.
            compute_seconds = 0.0
            reply_bytes = 0
            for fragment_id in source_tree.fragments_of(site_id):
                fragment = self.cluster.fragment(fragment_id)
                (triplet, stats), seconds = run.compute(
                    site_id, lambda f=fragment: bottom_up(f, qlist, self.algebra)
                )
                run.add_ops(stats.nodes_visited, stats.qlist_ops)
                triplets[fragment_id] = triplet
                compute_seconds += seconds
                reply_bytes += triplet.wire_bytes()
            reply_seconds = run.message(site_id, coordinator, reply_bytes, MSG_TRIPLET)
            site_finish[site_id] = request_seconds + compute_seconds + reply_seconds

        # Stage 3: compose partial answers at the coordinator.
        (answer, combine_seconds) = self._combine(run, coordinator, triplets, source_tree, qlist)
        elapsed = max(site_finish.values()) + combine_seconds
        return self._result(
            answer,
            run,
            elapsed,
            triplets=len(triplets),
            variables=sum(len(t.variables()) for t in triplets.values()),
        )

    def _combine(self, run, coordinator, triplets, source_tree, qlist):
        (answer, seconds) = run.compute(
            coordinator, lambda: eval_st(triplets, source_tree, qlist)
        )
        return answer, seconds

    # ------------------------------------------------------------------
    # Optional truly-concurrent stage 2
    # ------------------------------------------------------------------
    def evaluate_threaded(self, qlist: QList, max_workers: Optional[int] = None) -> EvalResult:
        """Run stage 2 on a thread pool (one worker per site).

        The answer and the visit/traffic accounting are identical to
        :meth:`evaluate`; ``elapsed_seconds`` is real wall-clock time.
        """
        import time

        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site
        query_bytes = qlist.wire_bytes()
        sites = source_tree.sites()
        started = time.perf_counter()

        def site_work(site_id: str) -> list[VectorTriplet]:
            produced = []
            for fragment_id in source_tree.fragments_of(site_id):
                triplet, stats = bottom_up(self.cluster.fragment(fragment_id), qlist, self.algebra)
                produced.append((triplet, stats))
            return produced

        with ThreadPoolExecutor(max_workers=max_workers or len(sites)) as pool:
            futures = {site_id: pool.submit(site_work, site_id) for site_id in sites}
            triplets: dict[str, VectorTriplet] = {}
            for site_id, future in futures.items():
                run.visit(site_id)
                run.message(coordinator, site_id, query_bytes, MSG_QUERY)
                reply_bytes = 0
                for triplet, stats in future.result():
                    run.add_ops(stats.nodes_visited, stats.qlist_ops)
                    triplets[triplet.fragment_id] = triplet
                    reply_bytes += triplet.wire_bytes()
                run.message(site_id, coordinator, reply_bytes, MSG_TRIPLET)

        answer = eval_st(triplets, source_tree, qlist)
        elapsed = time.perf_counter() - started
        run.metrics.compute_seconds_total = elapsed
        return self._result(answer, run, elapsed, backend="threads")


__all__ = ["ParBoXEngine"]
