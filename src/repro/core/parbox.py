"""Algorithm ParBoX (paper, Fig. 3(a)): the main contribution.

Three stages:

1. the coordinator reads the source tree and identifies the sites
   holding fragments;
2. each site, **in parallel**, runs ``bottomUp`` over every local
   fragment and sends all resulting triplets back in one reply -- this
   is why each site is visited exactly once regardless of how many
   fragments it stores;
3. the coordinator solves the Boolean equation system (``evalST``).

Stage 2 is dispatched as one :class:`~repro.distsim.executors.SiteJob`
per site through the run's executor, so with ``executor="threads"`` or
``"process"`` the sites really do evaluate concurrently.  Simulated
elapsed time = critical path over sites of (query transfer + site
compute + reply transfer), via :meth:`~repro.distsim.runtime.Run.join`,
plus the coordinator's combine; transfers to/from the coordinator's own
site are free.  The simulated ledger is identical across executors --
only the real wall clock (``metrics.wall_seconds``) shrinks when site
work overlaps.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Engine
from repro.core.eval_st import eval_st_many
from repro.core.plan import BatchPlan
from repro.distsim.executors import SiteExecutor, ThreadSiteExecutor
from repro.distsim.metrics import EvalResult
from repro.xpath.qlist import QList


class ParBoXEngine(Engine):
    """The Parallel Boolean XPath evaluation algorithm."""

    name = "ParBoX"

    def _evaluate_plan(self, plan: BatchPlan):
        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site

        # Stages 1-2: broadcast the (combined) query, every site
        # evaluates its fragments (one executor job per site) and
        # replies with all its triplets in one message -- one visit per
        # site for the whole batch.
        triplets, site_finish = self._broadcast_stage(
            run, plan, plan.combined.wire_bytes(), reply=True
        )

        # Stage 3: compose partial answers at the coordinator.  One
        # equation-system solve yields every query's answer entry.
        (answers, combine_seconds) = run.compute(
            coordinator,
            lambda: eval_st_many(triplets, source_tree, plan.answer_indices),
        )
        elapsed = run.join(site_finish) + combine_seconds
        details = dict(
            triplets=len(triplets),
            variables=sum(len(t.variables()) for t in triplets.values()),
        )
        return answers, run, elapsed, details

    # ------------------------------------------------------------------
    # Backward-compatible alias for the pre-executor API
    # ------------------------------------------------------------------
    def evaluate_threaded(
        self, qlist: QList, max_workers: Optional[int] = None
    ) -> EvalResult:
        """Run stage 2 on a thread pool (one worker per site).

        Predates the ``executor=`` knob and is kept for compatibility:
        it is exactly ``ParBoXEngine(cluster, executor="threads")`` with
        the answer and the visit/traffic accounting identical to
        :meth:`evaluate`; the real concurrency shows up in
        ``metrics.wall_seconds``.  The thread executor is cached per
        ``max_workers`` so repeated calls (e.g. one per pub/sub
        subscription) reuse one pool instead of spawning threads anew;
        the alias engine itself is rebuilt per call so the current
        ``self.trace`` is honored.
        """
        executors: Optional[dict[Optional[int], SiteExecutor]] = getattr(
            self, "_threaded_executors", None
        )
        if executors is None:
            executors = self._threaded_executors = {}
        executor = executors.get(max_workers)
        if executor is None:
            executor = executors[max_workers] = ThreadSiteExecutor(max_workers=max_workers)
        engine = ParBoXEngine(self.cluster, self.algebra, trace=self.trace, executor=executor)
        result = engine.evaluate(qlist)
        result.details["backend"] = "threads"
        return result

    def close(self) -> None:
        """Also reap the thread pools cached by :meth:`evaluate_threaded`."""
        executors: dict = getattr(self, "_threaded_executors", {})
        for cached in executors.values():
            cached.close()
        executors.clear()
        super().close()


__all__ = ["ParBoXEngine"]
