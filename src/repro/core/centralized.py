"""The optimal centralized evaluator (the paper's [10, 18] stand-in).

A single post-order traversal of a whole (unfragmented) tree computes
the query in ``O(|T| |q|)`` time with plain Booleans -- no formula
machinery.  It serves three roles:

* the computation stage of the NaiveCentralized baseline;
* the correctness *oracle* for every distributed engine in the tests;
* the reference point for the paper's "total computation is comparable
  to the best-known centralized algorithm" claim.

The implementation *is* the bitset ground kernel of
:mod:`repro.core.bottom_up`: a whole tree is the degenerate case of a
fragment with no virtual nodes, so the store-free bitmask pass applies
verbatim -- and keeping the two on one code path preserves the
"comparable total computation" claim as the kernels get faster
together.  A virtual node anywhere is the fast path's only bail-out
condition, which here is an error: a centralized evaluator has no
variables to give it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.bottom_up import _ground_fast_path, _ground_program, compile_entries
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree
from repro.xpath.qlist import QList


@dataclass(frozen=True)
class CentralizedStats:
    """Costs of one centralized evaluation."""

    nodes_visited: int
    qlist_ops: int
    wall_seconds: float


def evaluate_node(root: XMLNode, qlist: QList) -> tuple[bool, CentralizedStats]:
    """Evaluate ``qlist`` at ``root`` over the subtree below it.

    The subtree must be whole: virtual nodes are rejected, because a
    centralized evaluator has no variables to give them.
    """
    answers, stats = evaluate_node_many(root, qlist, [qlist.answer_index])
    return answers[0], stats


def evaluate_node_many(
    root: XMLNode, qlist: QList, answer_indices: Sequence[int]
) -> tuple[list[bool], CentralizedStats]:
    """One traversal, several answers: read ``V_root`` at each index.

    The batched form: ``qlist`` may be a combined batch query, and each
    input query's answer is the root's ``V`` value at that query's
    answer entry.
    """
    entries = compile_entries(qlist)
    n = len(entries)

    started = time.perf_counter()
    result = None
    if not root.is_virtual:
        result = _ground_fast_path(root, _ground_program(qlist, entries))
    if result is None:  # the fast path bails only on virtual nodes
        raise ValueError("centralized evaluation requires an unfragmented tree")
    root_v, _root_cv, _root_dv, nodes_visited = result
    stats = CentralizedStats(
        nodes_visited=nodes_visited,
        qlist_ops=nodes_visited * n,
        wall_seconds=time.perf_counter() - started,
    )
    return [bool(root_v >> index & 1) for index in answer_indices], stats


def evaluate_tree(tree: XMLTree, qlist: QList) -> tuple[bool, CentralizedStats]:
    """Evaluate a Boolean query at the root of a whole document."""
    return evaluate_node(tree.root, qlist)


def evaluate_tree_many(
    tree: XMLTree, qlist: QList, answer_indices: Sequence[int]
) -> tuple[list[bool], CentralizedStats]:
    """Evaluate a combined batch query over a whole document."""
    return evaluate_node_many(tree.root, qlist, answer_indices)


__all__ = [
    "evaluate_tree",
    "evaluate_tree_many",
    "evaluate_node",
    "evaluate_node_many",
    "CentralizedStats",
]
