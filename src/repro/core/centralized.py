"""The optimal centralized evaluator (the paper's [10, 18] stand-in).

A single post-order traversal of a whole (unfragmented) tree computes
the query in ``O(|T| |q|)`` time with plain Booleans -- no formula
machinery.  It serves three roles:

* the computation stage of the NaiveCentralized baseline;
* the correctness *oracle* for every distributed engine in the tests;
* the reference point for the paper's "total computation is comparable
  to the best-known centralized algorithm" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.bottom_up import compile_entries
from repro.xmltree.node import XMLNode
from repro.xmltree.tree import XMLTree
from repro.xpath.qlist import QList

_EPS, _LABEL, _TEXT, _CHILD, _DESC, _SELFQ, _SELFSEQ, _AND, _OR, _NOT = range(10)


@dataclass(frozen=True)
class CentralizedStats:
    """Costs of one centralized evaluation."""

    nodes_visited: int
    qlist_ops: int
    wall_seconds: float


def evaluate_node(root: XMLNode, qlist: QList) -> tuple[bool, CentralizedStats]:
    """Evaluate ``qlist`` at ``root`` over the subtree below it.

    The subtree must be whole: virtual nodes are rejected, because a
    centralized evaluator has no variables to give them.
    """
    answers, stats = evaluate_node_many(root, qlist, [qlist.answer_index])
    return answers[0], stats


def evaluate_node_many(
    root: XMLNode, qlist: QList, answer_indices: Sequence[int]
) -> tuple[list[bool], CentralizedStats]:
    """One traversal, several answers: read ``V_root`` at each index.

    The batched form: ``qlist`` may be a combined batch query, and each
    input query's answer is the root's ``V`` value at that query's
    answer entry.
    """
    entries = compile_entries(qlist)
    n = len(entries)

    started = time.perf_counter()
    nodes_visited = 0
    store: dict[int, tuple[list, list]] = {}

    for node in root.iter_postorder():
        if node.is_virtual:
            raise ValueError("centralized evaluation requires an unfragmented tree")
        nodes_visited += 1
        cv = [False] * n
        dv = [False] * n
        for child in node.children:
            child_v, child_dv = store.pop(child.node_id)
            for i in range(n):
                if child_v[i]:
                    cv[i] = True
                if child_dv[i]:
                    dv[i] = True
        v = [False] * n
        label = node.label
        text = node.text
        for i in range(n):
            opcode, arg0, arg1, payload = entries[i]
            if opcode == _SELFQ:
                value = v[arg0]
            elif opcode == _CHILD:
                value = cv[arg0]
            elif opcode == _DESC:
                value = dv[arg0]
            elif opcode == _LABEL:
                value = label == payload
            elif opcode == _TEXT:
                value = text == payload
            elif opcode == _AND or opcode == _SELFSEQ:
                value = v[arg0] and v[arg1]
            elif opcode == _OR:
                value = v[arg0] or v[arg1]
            elif opcode == _NOT:
                value = not v[arg0]
            else:  # _EPS
                value = True
            v[i] = value
            if value:
                dv[i] = True
        store[node.node_id] = (v, dv)

    root_v, _ = store.pop(root.node_id)
    stats = CentralizedStats(
        nodes_visited=nodes_visited,
        qlist_ops=nodes_visited * n,
        wall_seconds=time.perf_counter() - started,
    )
    return [root_v[index] for index in answer_indices], stats


def evaluate_tree(tree: XMLTree, qlist: QList) -> tuple[bool, CentralizedStats]:
    """Evaluate a Boolean query at the root of a whole document."""
    return evaluate_node(tree.root, qlist)


def evaluate_tree_many(
    tree: XMLTree, qlist: QList, answer_indices: Sequence[int]
) -> tuple[list[bool], CentralizedStats]:
    """Evaluate a combined batch query over a whole document."""
    return evaluate_node_many(tree.root, qlist, answer_indices)


__all__ = [
    "evaluate_tree",
    "evaluate_tree_many",
    "evaluate_node",
    "evaluate_node_many",
    "CentralizedStats",
]
