"""Algorithm LazyParBoX (paper, Section 4).

Eager ParBoX evaluates every fragment even when shallow fragments
already determine the answer.  LazyParBoX instead walks the source tree
by increasing depth: at step *i* it requests evaluation only of the
fragments at depth *i*, merges the new triplets into the growing
Boolean equation system and stops as soon as the answer resolves
(three-valued/Kleene evaluation: unknown sub-fragment variables may be
irrelevant, e.g. ``x OR true``).

Costs (paper Fig. 4): sites may be visited once per fragment (across
steps); only fragments at the same depth evaluate in parallel (each
depth is dispatched as one executor batch, one
:class:`~repro.distsim.executors.SiteJob` per touched site), so the
elapsed time is the *sum over visited depths* of the per-depth critical
paths --
roughly 3x ParBoX when the satisfying fragment sits mid-tree
(Experiment 2, Fig. 11), in exchange for evaluating fewer fragments
(lower total site load).
"""

from __future__ import annotations

from repro.boolexpr.formula import Var
from repro.core.engine import CONTROL_BYTES, MSG_CONTROL, MSG_QUERY, MSG_TRIPLET, Engine
from repro.core.eval_st import answer_variable, build_equation_system
from repro.core.plan import BatchPlan
from repro.core.vectors import VectorTriplet


class LazyParBoXEngine(Engine):
    """Depth-by-depth evaluation with early termination.

    Under batching, a depth step still dispatches one job per touched
    site (carrying the combined query), and the descent stops at the
    first depth where *every* query of the batch Kleene-resolves -- the
    batch descends exactly as deep as its deepest-resolving member
    would alone, never deeper.
    """

    name = "LazyParBoX"

    def _evaluate_plan(self, plan: BatchPlan):
        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site
        query_bytes = plan.combined.wire_bytes()
        targets = [
            answer_variable(source_tree, index=index) for index in plan.answer_indices
        ]
        # Duplicate queries share an answer entry: resolve each once.
        open_targets = list(dict.fromkeys(targets))

        triplets: dict[str, VectorTriplet] = {}
        queried_sites: set[str] = set()
        elapsed = 0.0
        verdicts: dict[Var, bool] = {}
        steps_evaluated = 0

        # The paper's first step covers the coordinator AND depth 1
        # ("LazyParBoX initially evaluates a query only in the
        # coordinator and in the fragments of depth 1"); every later
        # step descends one more depth.
        depth_batches = [[0, 1]] + [[d] for d in range(2, source_tree.max_depth() + 1)]
        for batch in depth_batches:
            fragment_ids = [
                fid for depth in batch for fid in source_tree.fragments_at_depth(depth)
            ]
            if not fragment_ids:
                continue
            steps_evaluated += 1

            # All fragments at this depth evaluate in parallel (one
            # request per site per step; the query itself is sent only on
            # the first contact with a site).
            by_site: dict[str, list[str]] = {}
            for fragment_id in fragment_ids:
                by_site.setdefault(source_tree.site_of(fragment_id), []).append(fragment_id)

            request_seconds: dict[str, float] = {}
            jobs = []
            for site_id, site_fragments in by_site.items():
                run.visit(site_id)
                if site_id in queried_sites:
                    request_seconds[site_id] = run.message(
                        coordinator, site_id, CONTROL_BYTES, MSG_CONTROL
                    )
                else:
                    request_seconds[site_id] = run.message(
                        coordinator, site_id, query_bytes, MSG_QUERY
                    )
                    queried_sites.add(site_id)
                jobs.append(
                    self._site_job(
                        site_id,
                        plan.combined,
                        fragment_ids=site_fragments,
                        segments=plan.segments,
                    )
                )
            site_batch = run.parallel(jobs)

            step_finish: dict[str, float] = {}
            for site_id, outcome in site_batch:
                self._fold_outcome(run, outcome, triplets)
                reply_seconds = run.message(
                    site_id, coordinator, outcome.reply_bytes(), MSG_TRIPLET
                )
                step_finish[site_id] = (
                    request_seconds[site_id] + outcome.seconds + reply_seconds
                )
            elapsed += run.join(step_finish)

            # Try to resolve the still-open queries with what we have.
            (resolved, combine_seconds) = run.compute(
                coordinator, lambda: _try_answers(triplets, open_targets)
            )
            elapsed += combine_seconds
            verdicts.update(resolved)
            open_targets = [t for t in open_targets if t not in verdicts]
            if not open_targets:
                break

        if open_targets:  # all depths evaluated; the system must resolve now
            raise RuntimeError("LazyParBoX failed to resolve after all depths")
        answers = [verdicts[target] for target in targets]
        details = dict(
            fragments_evaluated=len(triplets),
            steps_evaluated=steps_evaluated,
        )
        return answers, run, elapsed, details


def _try_answers(
    triplets: dict[str, VectorTriplet], targets: list[Var]
) -> dict[Var, bool]:
    """Kleene-evaluate the open answer variables against the partial system.

    Returns only the targets that resolved; one memoized system serves
    every query of the batch.
    """
    system = build_equation_system(triplets)
    resolved: dict[Var, bool] = {}
    for target in targets:
        verdict = system.partial_value_of(target)
        if verdict is not None:
            resolved[target] = verdict
    return resolved


__all__ = ["LazyParBoXEngine"]
