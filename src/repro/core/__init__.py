"""The paper's contribution: ParBoX and friends.

* :func:`~repro.core.bottom_up.bottom_up` -- per-fragment partial
  evaluation (Fig. 3(b));
* :func:`~repro.core.eval_st.eval_st` -- composition of partial answers
  via Boolean equation solving;
* :class:`ParBoXEngine` -- the three-stage algorithm (Fig. 3(a));
* :class:`HybridParBoXEngine`, :class:`FullDistParBoXEngine`,
  :class:`LazyParBoXEngine` -- the Section 4 variants;
* :class:`NaiveCentralizedEngine`, :class:`NaiveDistributedEngine` --
  the Section 3 baselines;
* :func:`~repro.core.centralized.evaluate_tree` -- the optimal
  centralized algorithm (correctness oracle and baseline compute stage);
* :class:`~repro.core.selection.SelectionEngine` -- the Section 8
  extension to data-selection queries (each site visited at most twice).

The batching layer sits on top: :func:`~repro.core.plan.plan_batch`
combines many compiled queries into one broadcastable QList (with
duplicate collapsing), every engine's
:meth:`~repro.core.engine.Engine.evaluate_many` evaluates such a plan
with a single-query's worth of site visits, and
:class:`~repro.core.session.QuerySession` adds the compiled-query cache
and stream chunking on top.
"""

from repro.core.bottom_up import bottom_up, BottomUpStats
from repro.core.centralized import (
    evaluate_tree,
    evaluate_tree_many,
    evaluate_node,
    evaluate_node_many,
    CentralizedStats,
)
from repro.core.engine import Engine
from repro.core.eval_st import (
    answer_variable,
    build_equation_system,
    eval_st,
    eval_st_many,
    resolve_triplet,
)
from repro.core.plan import (
    BatchPlan,
    CompiledQuery,
    QueryCache,
    attribute_costs,
    plan_batch,
)
from repro.core.session import QuerySession, SessionOutcome
from repro.core.full_dist import FullDistParBoXEngine
from repro.core.hybrid import HybridParBoXEngine
from repro.core.lazy import LazyParBoXEngine
from repro.core.naive_centralized import NaiveCentralizedEngine
from repro.core.naive_distributed import NaiveDistributedEngine
from repro.core.parbox import ParBoXEngine
from repro.core.selection import (
    SelectionBatch,
    SelectionEngine,
    SelectionResult,
    select_centralized,
)
from repro.core.vectors import VectorTriplet, ground_triplet_from_bools

ALL_ENGINES = (
    ParBoXEngine,
    HybridParBoXEngine,
    FullDistParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
)

#: Engine lookup by name (CLI and config files use these keys).
ENGINE_REGISTRY = {engine.name.lower(): engine for engine in ALL_ENGINES}
ENGINE_REGISTRY.update(
    {
        "parbox": ParBoXEngine,
        "hybrid": HybridParBoXEngine,
        "fulldist": FullDistParBoXEngine,
        "lazy": LazyParBoXEngine,
        "central": NaiveCentralizedEngine,
        "distributed": NaiveDistributedEngine,
    }
)

__all__ = [
    "bottom_up",
    "BottomUpStats",
    "evaluate_tree",
    "evaluate_tree_many",
    "evaluate_node",
    "evaluate_node_many",
    "CentralizedStats",
    "Engine",
    "eval_st",
    "eval_st_many",
    "build_equation_system",
    "answer_variable",
    "resolve_triplet",
    "BatchPlan",
    "CompiledQuery",
    "QueryCache",
    "plan_batch",
    "attribute_costs",
    "QuerySession",
    "SessionOutcome",
    "VectorTriplet",
    "ground_triplet_from_bools",
    "ParBoXEngine",
    "HybridParBoXEngine",
    "FullDistParBoXEngine",
    "LazyParBoXEngine",
    "NaiveCentralizedEngine",
    "NaiveDistributedEngine",
    "SelectionEngine",
    "SelectionResult",
    "SelectionBatch",
    "select_centralized",
    "ALL_ENGINES",
    "ENGINE_REGISTRY",
]
