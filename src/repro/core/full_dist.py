"""Algorithm FullDistParBoX (paper, Section 4).

Stages 1-2 are identical to ParBoX (parallel ``bottomUp`` everywhere,
dispatched as one :class:`~repro.distsim.executors.SiteJob` per site
through the run's executor).  Stage 3 replaces the coordinator's
``evalST`` with ``evalDistrST``: triplets flow bottom-up along the
source tree, and each site resolves its own fragments' formulas against
the (variable-free) triplets received from its sub-fragments before
passing a ground triplet to its parent's site.  Consequences measured
here:

* no variables ever cross the network -- reply traffic is smaller than
  ParBoX's (the paper observes "at most half the traffic");
* there is no coordinator bottleneck, but a site may be activated once
  per fragment during stage 3 (visits up to ``card(F_Si)``);
* elapsed time: a fragment's ground triplet is ready at
  ``max(site stage-2 finish, max over children of (child ready +
  transfer)) + local resolve`` -- a dependency-DAG merge rather than a
  flat fork/join, so stage 3 keeps its explicit ready-time recurrence
  while stage 2 uses the executor's true concurrency.
"""

from __future__ import annotations

from repro.core.engine import MSG_GROUND_TRIPLET, Engine
from repro.core.eval_st import resolve_triplet
from repro.core.plan import BatchPlan
from repro.core.vectors import VectorTriplet


class FullDistParBoXEngine(Engine):
    """ParBoX with a fully distributed composition stage."""

    name = "FullDistParBoX"

    def _evaluate_plan(self, plan: BatchPlan):
        run = self._new_run()
        source_tree = self.cluster.source_tree()

        # Stages 1-2: broadcast + parallel local evaluation (as ParBoX).
        # Every site also receives a copy of the source tree so it knows
        # its parents/children for stage 3; no stage-2 replies -- the
        # results travel as ground triplets during stage 3 itself.
        triplets, site_finish = self._broadcast_stage(
            run, plan, plan.combined.wire_bytes() + source_tree.wire_bytes(), reply=False
        )

        # Stage 3 (evalDistrST): resolve bottom-up along the source tree.
        ready: dict[str, tuple[VectorTriplet, float]] = {}
        stack: list[tuple[str, bool]] = [(source_tree.root_fragment_id, False)]
        while stack:
            fragment_id, expanded = stack.pop()
            if not expanded:
                stack.append((fragment_id, True))
                for child in reversed(source_tree.children_of(fragment_id)):
                    stack.append((child, False))
                continue

            site_id = source_tree.site_of(fragment_id)
            children = source_tree.children_of(fragment_id)
            ready_time = site_finish[site_id]
            child_triplets: dict[str, VectorTriplet] = {}
            for child_id in children:
                child_triplet, child_time = ready[child_id]
                child_site = source_tree.site_of(child_id)
                transfer = run.message(
                    child_site, site_id, child_triplet.wire_bytes(), MSG_GROUND_TRIPLET
                )
                ready_time = max(ready_time, child_time + transfer)
                child_triplets[child_id] = child_triplet
            if children:
                # Stage-3 activation of the site for this fragment.
                run.visit(site_id)
            (ground, resolve_seconds) = run.compute(
                site_id,
                lambda t=triplets[fragment_id], c=child_triplets: resolve_triplet(t, c),
            )
            ready[fragment_id] = (ground, ready_time + resolve_seconds)

        root_triplet, elapsed = ready[source_tree.root_fragment_id]
        answers = [root_triplet.v[index].evaluate({}) for index in plan.answer_indices]
        return answers, run, elapsed, dict(triplets=len(triplets))


__all__ = ["FullDistParBoXEngine"]
