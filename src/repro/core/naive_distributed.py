"""The NaiveDistributed baseline (paper, Section 3).

A distributed bottom-up traversal of the fragment tree: control jumps
from a fragment to each sub-fragment in turn, waits for its (ground)
result and continues -- "the distributed algorithm actually follows a
sequential execution and does not take advantage of parallelism", and a
site is visited once **per fragment** it stores.

Each fragment edge carries two messages: a control/query handoff down
and a variable-free Boolean vector triplet up, for ``O(|q| card(F))``
total traffic and zero data shipping.

Implementation note: a site's local work is expressed as ``bottom_up``
followed by substitution of the children's ground triplets, which
computes exactly what the paper's suspended in-fragment traversal
computes; the sequential cost accounting (sum of all per-fragment
compute and message times) matches the paper's execution structure.
"""

from __future__ import annotations

from repro.core.engine import CONTROL_BYTES, MSG_CONTROL, MSG_GROUND_TRIPLET, MSG_QUERY, Engine
from repro.core.eval_st import resolve_triplet
from repro.core.plan import BatchPlan
from repro.core.vectors import VectorTriplet


class NaiveDistributedEngine(Engine):
    """Sequential distributed traversal; no data shipped, no parallelism."""

    name = "NaiveDistributed"

    def _evaluate_plan(self, plan: BatchPlan):
        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site
        query_bytes = plan.combined.wire_bytes()
        root_fragment = source_tree.root_fragment_id

        elapsed_total = 0.0
        queried_sites: set[str] = set()

        # Iterative post-order over the fragment tree (avoids Python
        # recursion limits on pathological chain fragmentations).
        resolved: dict[str, VectorTriplet] = {}
        stack: list[tuple[str, bool]] = [(root_fragment, False)]
        while stack:
            fragment_id, expanded = stack.pop()
            if not expanded:
                stack.append((fragment_id, True))
                for child in reversed(source_tree.children_of(fragment_id)):
                    stack.append((child, False))
                continue

            site_id = source_tree.site_of(fragment_id)
            parent = source_tree.parent_of(fragment_id)
            caller_site = source_tree.site_of(parent) if parent else coordinator

            # Control (and, on first contact, the query) hops to the site.
            run.visit(site_id)
            handoff_bytes = CONTROL_BYTES
            if site_id not in queried_sites:
                handoff_bytes += query_bytes
                queried_sites.add(site_id)
            elapsed_total += run.message(
                caller_site, site_id, handoff_bytes, MSG_QUERY if handoff_bytes > CONTROL_BYTES else MSG_CONTROL
            )

            # Local evaluation, resolving children synchronously.  The
            # single-fragment job still goes through the executor so the
            # strategy choice is honored uniformly -- the batches just
            # never overlap, which *is* the algorithm's sequential flaw.
            batch = run.parallel(
                [
                    self._site_job(
                        site_id,
                        plan.combined,
                        fragment_ids=[fragment_id],
                        segments=plan.segments,
                    )
                ]
            )
            outcome = batch.outcomes[site_id]
            fragment_outcome = outcome.fragments[0]
            triplet = fragment_outcome.triplet
            compute_seconds = outcome.seconds
            run.add_ops(fragment_outcome.nodes_visited, fragment_outcome.qlist_ops)
            for segment_index, ops in enumerate(fragment_outcome.segment_ops):
                run.add_segment_ops(segment_index, ops)
            children = {cid: resolved[cid] for cid in source_tree.children_of(fragment_id)}
            (ground, resolve_seconds) = run.compute(
                site_id, lambda t=triplet, c=children: resolve_triplet(t, c)
            )
            resolved[fragment_id] = ground
            elapsed_total += compute_seconds + resolve_seconds

            # The ground result returns to the caller.
            elapsed_total += run.message(
                site_id, caller_site, ground.wire_bytes(), MSG_GROUND_TRIPLET
            )

        root_vector = resolved[root_fragment].v
        answers = [root_vector[index].evaluate({}) for index in plan.answer_indices]
        return answers, run, elapsed_total, {}


__all__ = ["NaiveDistributedEngine"]
