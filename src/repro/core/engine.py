"""Common engine interface.

Every algorithm of Sections 3-4 is an :class:`Engine`: construct it once
over a :class:`~repro.distsim.cluster.Cluster`, then call
:meth:`Engine.evaluate` per query.  Engines share the composition
algebra knob (canonical vs paper-literal formula composition, used by
the ablation benchmarks) and the message-kind vocabulary.
"""

from __future__ import annotations

from typing import Optional

from repro.boolexpr.compose import DEFAULT_ALGEBRA, FormulaAlgebra
from repro.distsim.cluster import Cluster
from repro.distsim.metrics import EvalResult
from repro.distsim.runtime import Run
from repro.distsim.trace import Trace
from repro.xpath.qlist import QList

# Message kinds (traffic is reported per kind in the ablation tables).
MSG_QUERY = "query"  # coordinator -> site: the QList broadcast
MSG_TRIPLET = "triplet"  # site -> coordinator: (V, CV, DV) with variables
MSG_GROUND_TRIPLET = "ground-triplet"  # variable-free triplet (FullDist, NaiveDist)
MSG_FRAGMENT_DATA = "fragment-data"  # serialized XML (NaiveCentralized only)
MSG_CONTROL = "control"  # small control/handoff messages

#: Nominal size of a control message in bytes.
CONTROL_BYTES = 64


class Engine:
    """Base class: holds the cluster and the formula-composition algebra."""

    #: Engine name used in experiment tables.
    name = "abstract"

    def __init__(
        self,
        cluster: Cluster,
        algebra: Optional[FormulaAlgebra] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        self.cluster = cluster
        self.algebra = algebra or DEFAULT_ALGEBRA
        self.trace = trace

    def evaluate(self, qlist: QList) -> EvalResult:
        """Evaluate a compiled query; subclasses implement the algorithm."""
        raise NotImplementedError

    def _new_run(self) -> Run:
        return Run(self.cluster, trace=self.trace)

    def _result(self, answer: bool, run: Run, elapsed_seconds: float, **details) -> EvalResult:
        run.finish(elapsed_seconds)
        return EvalResult(answer=answer, engine=self.name, metrics=run.metrics, details=details)


__all__ = [
    "Engine",
    "MSG_QUERY",
    "MSG_TRIPLET",
    "MSG_GROUND_TRIPLET",
    "MSG_FRAGMENT_DATA",
    "MSG_CONTROL",
    "CONTROL_BYTES",
]
