"""Common engine interface.

Every algorithm of Sections 3-4 is an :class:`Engine`: construct it once
over a :class:`~repro.distsim.cluster.Cluster`, then call
:meth:`Engine.evaluate` per query or :meth:`Engine.evaluate_many` per
*batch* of queries.  The engine contract is batch-native: subclasses
implement :meth:`Engine._evaluate_plan` against a combined
:class:`~repro.core.plan.BatchPlan`, so one batch of N queries costs one
set of site visits (one broadcast, one reply per site -- not N), and
``evaluate()`` is simply the batch-of-one special case.  Engines share
the composition algebra knob (canonical vs paper-literal formula
composition, used by the ablation benchmarks), the site-execution
strategy (``serial`` / ``threads`` / ``process``, see
:mod:`repro.distsim.executors`) and the message-kind vocabulary.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.boolexpr.compose import DEFAULT_ALGEBRA, FormulaAlgebra
from repro.core.plan import BatchPlan, attribute_costs, coerce_plan
from repro.distsim.cluster import Cluster
from repro.distsim.executors import SiteExecutor, SiteJob, resolve_executor
from repro.distsim.metrics import BatchResult, EvalResult
from repro.distsim.runtime import MSG_MIGRATE, Run
from repro.distsim.trace import Trace
from repro.xpath.qlist import QList

# Message kinds (traffic is reported per kind in the ablation tables).
MSG_QUERY = "query"  # coordinator -> site: the QList broadcast
MSG_TRIPLET = "triplet"  # site -> coordinator: (V, CV, DV) with variables
MSG_TRIPLET_DELTA = "triplet-delta"  # site -> coordinator: changed slices only (stream refresh)
MSG_GROUND_TRIPLET = "ground-triplet"  # variable-free triplet (FullDist, NaiveDist)
MSG_FRAGMENT_DATA = "fragment-data"  # serialized XML (NaiveCentralized only)
MSG_CONTROL = "control"  # small control/handoff messages
# MSG_MIGRATE ("migrate") -- fragment data shipped by rebalancing -- is
# defined in repro.distsim.runtime (Run.migrate emits it) and
# re-exported here with the other kinds.

#: Nominal size of a control message in bytes.
CONTROL_BYTES = 64


class Engine:
    """Base class: holds the cluster, the algebra and the site executor.

    ``executor`` selects how the parallel stages really run: a registry
    name (``"serial"``, ``"threads"``, ``"process"``) or a pre-built
    :class:`~repro.distsim.executors.SiteExecutor` instance (shareable
    across engines so a process pool forks once).  The simulated cost
    ledger is executor-independent; only the real wall clock changes.

    An engine that received a *name* owns the resolved executor: call
    :meth:`close` (or use the engine as a context manager) to reap its
    worker pool.  A pre-built instance is shared, so the engine leaves
    its lifecycle to whoever built it.
    """

    #: Engine name used in experiment tables.
    name = "abstract"

    def __init__(
        self,
        cluster: Cluster,
        algebra: Optional[FormulaAlgebra] = None,
        trace: Optional[Trace] = None,
        executor: Union[str, SiteExecutor, None] = None,
    ) -> None:
        self.cluster = cluster
        self.algebra = algebra or DEFAULT_ALGEBRA
        self.trace = trace
        self.executor = resolve_executor(executor)
        self._owns_executor = not isinstance(executor, SiteExecutor)

    def evaluate(self, qlist: QList) -> EvalResult:
        """Evaluate one compiled query: the batch-of-one special case."""
        return self.evaluate_many([qlist]).single()

    def evaluate_many(
        self, batch: Union[BatchPlan, Iterable[Union[str, QList]]]
    ) -> BatchResult:
        """Evaluate a batch of queries with one set of site visits.

        ``batch`` is a ready :class:`~repro.core.plan.BatchPlan` or an
        iterable of queries (QLists, or texts compiled ad hoc); plans
        built from N distinct queries broadcast one combined QList, so
        the per-site visit count is that of a *single* query.  Returns
        a :class:`~repro.distsim.metrics.BatchResult`: per-query
        answers (bitwise identical to sequential ``evaluate()`` calls)
        over one batch ledger, plus per-query cost attribution.
        """
        plan = coerce_plan(batch)
        answers, run, elapsed, details = self._evaluate_plan(plan)
        run.finish(elapsed)
        details.setdefault("executor", self.executor.name)
        details.setdefault("batch_size", len(plan))
        details.setdefault("unique_queries", plan.unique_count)
        details.setdefault("combined_entries", len(plan.combined))
        details.setdefault("duplicates_collapsed", plan.duplicate_count())
        return BatchResult(
            answers=tuple(bool(answer) for answer in answers),
            engine=self.name,
            metrics=run.metrics,
            per_query=attribute_costs(plan, answers, run.metrics),
            details=details,
        )

    def _evaluate_plan(
        self, plan: BatchPlan
    ) -> tuple[list[bool], Run, float, dict]:
        """Run the algorithm against a combined batch plan.

        Subclasses evaluate ``plan.combined`` exactly as they would a
        single query and read one answer per ``plan.answer_indices``
        entry; they return ``(answers, run, simulated elapsed,
        details)`` and leave finishing the run to the caller.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release the executor pool this engine owns.

        Closes the executor only when the engine resolved it from a
        name (a shared pre-built instance belongs to its builder).
        Safe to call twice; unclosed pools are reaped at interpreter
        exit.  Subclasses holding extra pools extend this.
        """
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _new_run(self) -> Run:
        return Run(self.cluster, trace=self.trace, executor=self.executor)

    def _site_job(
        self,
        site_id: str,
        qlist: QList,
        fragment_ids: Optional[Sequence[str]] = None,
        segments: tuple[tuple[int, int], ...] = (),
    ) -> SiteJob:
        """The site's parallel work: evaluate its fragments against ``qlist``.

        ``fragment_ids`` restricts the job to a subset (LazyParBoX
        dispatches one depth level at a time); the default is every
        fragment the site stores, in source-tree order.  ``segments``
        carries the batch plan's per-query spans so the site reports
        per-query operation counts.
        """
        if fragment_ids is None:
            fragment_ids = self.cluster.source_tree().fragments_of(site_id)
        fragments = tuple(self.cluster.fragment(fid) for fid in fragment_ids)
        return SiteJob(site_id, fragments, qlist, self.algebra, segments=segments)

    def _fold_outcome(self, run: Run, outcome, triplets: dict) -> None:
        """Record one site outcome's costs and collect its triplets.

        Adds the deterministic operation counts (total and per batch
        segment) to the ledger and stores the produced triplets by
        fragment id into ``triplets``.  Reply traffic is the caller's
        concern: not every engine sends stage-2 replies (FullDist ships
        ground triplets in stage 3), and sizing a reply serializes
        every formula vector.
        """
        for fragment_outcome in outcome.fragments:
            run.add_ops(fragment_outcome.nodes_visited, fragment_outcome.qlist_ops)
            for segment_index, ops in enumerate(fragment_outcome.segment_ops):
                run.add_segment_ops(segment_index, ops)
            triplets[fragment_outcome.triplet.fragment_id] = fragment_outcome.triplet

    def _broadcast_stage(
        self, run: Run, plan: BatchPlan, request_bytes: int, reply: bool
    ) -> tuple[dict, dict[str, float]]:
        """ParBoX stages 1-2: broadcast, evaluate everywhere, fold.

        Visits every site once *per batch*, sends it ``request_bytes``
        of combined query (and whatever else the engine bundles, e.g.
        FullDist's source-tree copy), dispatches one batched
        :class:`SiteJob` per site through the executor and folds the
        outcomes.  Returns ``(triplets, site_finish)`` where each
        site's finish time is request transfer + busy seconds, plus the
        triplet-reply transfer when ``reply`` is true (engines whose
        composition stage ships results itself pass ``False``).
        """
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site
        request_seconds: dict[str, float] = {}
        jobs = []
        for site_id in source_tree.sites():
            run.visit(site_id)
            request_seconds[site_id] = run.message(
                coordinator, site_id, request_bytes, MSG_QUERY
            )
            jobs.append(self._site_job(site_id, plan.combined, segments=plan.segments))
        batch = run.parallel(jobs)

        triplets: dict = {}
        site_finish: dict[str, float] = {}
        for site_id, outcome in batch:
            self._fold_outcome(run, outcome, triplets)
            finish = request_seconds[site_id] + outcome.seconds
            if reply:
                finish += run.message(
                    site_id, coordinator, outcome.reply_bytes(), MSG_TRIPLET
                )
            site_finish[site_id] = finish
        return triplets, site_finish

    def _result(self, answer: bool, run: Run, elapsed_seconds: float, **details) -> EvalResult:
        run.finish(elapsed_seconds)
        details.setdefault("executor", self.executor.name)
        return EvalResult(answer=answer, engine=self.name, metrics=run.metrics, details=details)


__all__ = [
    "Engine",
    "MSG_QUERY",
    "MSG_TRIPLET",
    "MSG_TRIPLET_DELTA",
    "MSG_GROUND_TRIPLET",
    "MSG_FRAGMENT_DATA",
    "MSG_CONTROL",
    "MSG_MIGRATE",
    "CONTROL_BYTES",
]
