"""Data-selection XPath queries (paper, Section 8 / conclusions).

The paper notes that the partial-evaluation technique "generalizes to
data selection XPath queries ... with the performance guarantee that
each site is visited at most twice".  This module implements that
extension for queries that are a single path ``p``: return the *set of
nodes* reachable via ``p`` from the root of the fragmented tree.

Protocol (two visits per site):

1. **Visit 1 -- qualifier resolution.**  Plain ParBoX stage 2: every
   site returns ``(V, CV, DV)`` triplets.  The coordinator solves the
   whole Boolean equation system, so it knows the ground value of every
   ``Var(F, kind, i)``.
2. **Visit 2 -- conditional selection.**  The coordinator sends each
   site the ground values of the variables of its fragments' virtual
   nodes.  With those, a site (a) re-runs a *ground* bottom-up pass to
   know every sub-query's truth at every local node, and (b) runs one
   multi-source top-down automaton pass computing, **for every possible
   entry state j** (a path-shaped QList entry activated at the fragment
   root), which local nodes are selected and which entry states each
   virtual node would be activated with.  These
   :class:`SelectionTable` tables go back to the coordinator.
3. **Composition (coordinator-local).**  Starting from the root
   fragment with the answer entry active, the coordinator walks the
   fragment tree, unioning each fragment's selected rows for its active
   states and activating sub-fragments through the exit maps.

Selected nodes are reported as child-index paths from the document
root, which compose exactly across fragment boundaries (a virtual node
occupies the same child position as the subtree it replaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

from repro.boolexpr.formula import Var
from repro.core.bottom_up import compile_entries
from repro.core.engine import MSG_CONTROL, MSG_TRIPLET, Engine
from repro.core.eval_st import build_equation_system
from repro.core.plan import BatchPlan, attribute_costs, coerce_plan
from repro.core.vectors import VectorTriplet
from repro.distsim.metrics import EvalResult, QueryCost
from repro.fragments.fragment import Fragment
from repro.xmltree.node import XMLNode
from repro.xpath.qlist import (
    OP_CHILD,
    OP_DESC,
    OP_EPSILON,
    OP_OR,
    OP_SELF_QUAL,
    OP_SELF_SEQ,
    QList,
)

_PATH_OPS = (OP_EPSILON, OP_SELF_QUAL, OP_SELF_SEQ, OP_CHILD, OP_DESC)

_EPS, _LABEL, _TEXT, _CHILD, _DESC, _SELFQ, _SELFSEQ, _AND, _OR, _NOT = range(10)

NodePath = tuple[int, ...]


@dataclass(frozen=True)
class SelectionTable:
    """One fragment's phase-2 reply.

    ``selected[j]`` -- paths (relative to the fragment root) selected if
    entry ``j`` is activated at the fragment root; ``exits[j]`` -- for
    each virtual node, the entry states it would be activated with.
    """

    fragment_id: str
    selected: dict[int, tuple[NodePath, ...]]
    exits: dict[int, dict[str, frozenset[int]]]

    def wire_bytes(self) -> int:
        """Approximate reply size (path tuples + exit maps)."""
        total = 16
        for paths in self.selected.values():
            total += 4 + sum(2 * len(path) + 2 for path in paths)
        for exit_map in self.exits.values():
            for sub_id, states in exit_map.items():
                total += len(sub_id) + 2 * len(states) + 4
        return total


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a distributed selection."""

    paths: tuple[NodePath, ...]
    result: EvalResult

    def __len__(self) -> int:
        return len(self.paths)


@dataclass(frozen=True)
class SelectionBatch:
    """Outcome of a batched selection: N node sets over one ledger.

    ``selections[i]`` is query *i*'s selected paths; ``result`` is the
    *batch-level* cost ledger (still at most two visits per site) and
    ``per_query`` its per-query attribution.
    """

    selections: tuple[tuple[NodePath, ...], ...]
    result: EvalResult
    per_query: tuple[QueryCost, ...]

    def __len__(self) -> int:
        return len(self.selections)

    def __getitem__(self, index: int) -> tuple[NodePath, ...]:
        return self.selections[index]


def path_entry_indices(qlist: QList) -> list[int]:
    """Indices of path-shaped entries (the possible automaton states)."""
    return [i for i, entry in enumerate(qlist) if entry.op in _PATH_OPS]


def initial_states(qlist: QList, answer_index: Optional[int] = None) -> frozenset[int]:
    """The automaton start states of a selection query.

    A selection query is a path or a union (``or``) of paths; unions
    simply activate several start states at the document root.  Raises
    ``ValueError`` for anything else (conjunctions/negations have no
    node-set semantics).  ``answer_index`` overrides the root entry --
    for a *batch*, each member query's states start at that query's
    answer entry inside the combined QList.
    """
    out: set[int] = set()
    stack = [qlist.answer_index if answer_index is None else answer_index]
    while stack:
        index = stack.pop()
        entry = qlist[index]
        if entry.op in _PATH_OPS:
            out.add(index)
        elif entry.op == OP_OR:
            stack.extend(entry.args)
        else:
            raise ValueError(
                "selection queries must be a path or a union of paths "
                f"(found a {entry.op!r} entry)"
            )
    return frozenset(out)


def ground_values_by_node(
    fragment: Fragment,
    qlist: QList,
    virtual_env: Mapping[Var, bool],
) -> dict[int, list[bool]]:
    """Ground bottom-up pass: ``V`` vector (plain bools) for every node.

    ``virtual_env`` supplies the resolved values for the variables of
    the fragment's virtual nodes (phase-1 output).
    """
    entries = compile_entries(qlist)
    n = len(entries)
    v_store: dict[int, list[bool]] = {}
    dv_store: dict[int, list[bool]] = {}

    for node in fragment.root.iter_postorder():
        if node.is_virtual:
            owner = node.fragment_ref
            assert owner is not None
            v_store[node.node_id] = [virtual_env[Var(owner, "V", i)] for i in range(n)]
            dv_store[node.node_id] = [virtual_env[Var(owner, "DV", i)] for i in range(n)]
            continue
        cv = [False] * n
        dv = [False] * n
        for child in node.children:
            child_v = v_store[child.node_id]
            child_dv = dv_store.pop(child.node_id)
            for i in range(n):
                if child_v[i]:
                    cv[i] = True
                if child_dv[i]:
                    dv[i] = True
        v = [False] * n
        label, text = node.label, node.text
        for i in range(n):
            opcode, arg0, arg1, payload = entries[i]
            if opcode == _SELFQ:
                value = v[arg0]
            elif opcode == _CHILD:
                value = cv[arg0]
            elif opcode == _DESC:
                value = dv[arg0]
            elif opcode == _LABEL:
                value = label == payload
            elif opcode == _TEXT:
                value = text == payload
            elif opcode == _AND or opcode == _SELFSEQ:
                value = v[arg0] and v[arg1]
            elif opcode == _OR:
                value = v[arg0] or v[arg1]
            elif opcode == _NOT:
                value = not v[arg0]
            else:
                value = True
            v[i] = value
            if value:
                dv[i] = True
        v_store[node.node_id] = v
        dv_store[node.node_id] = dv
    return v_store


def selection_table(
    fragment: Fragment,
    qlist: QList,
    virtual_env: Mapping[Var, bool],
) -> SelectionTable:
    """Phase-2 site-local work: the conditional selection table.

    Runs the top-down automaton once with *all* path entries as
    potential origins, tracking per active state the bitmask of origins
    that produced it.
    """
    origins = path_entry_indices(qlist)
    origin_bit = {j: 1 << k for k, j in enumerate(origins)}
    entries = compile_entries(qlist)
    values = ground_values_by_node(fragment, qlist, virtual_env)

    selected_masks: dict[NodePath, int] = {}
    exit_masks: dict[tuple[str, int], int] = {}  # (sub_fragment, state) -> origins

    # Stack of (node, path, states) where states maps entry index ->
    # origin mask of the automaton runs that activated it here.
    initial = {j: origin_bit[j] for j in origins}
    stack: list[tuple[XMLNode, NodePath, dict[int, int]]] = [(fragment.root, (), initial)]
    while stack:
        node, path, states = stack.pop()
        if node.is_virtual:
            sub_id = node.fragment_ref
            assert sub_id is not None
            for state, mask in states.items():
                key = (sub_id, state)
                exit_masks[key] = exit_masks.get(key, 0) | mask
            continue

        node_values = values[node.node_id]
        # Saturate self-expanding states (SELF_SEQ/DESC add lower-index /
        # same-node states; continuation indices are strictly smaller, so
        # processing by decreasing index terminates).
        worklist = sorted(states, reverse=True)
        child_states: dict[int, int] = {}
        while worklist:
            j = worklist.pop(0)
            mask = states[j]
            op = entries[j][0]
            arg0, arg1 = entries[j][1], entries[j][2]
            if op == _EPS:
                selected_masks[path] = selected_masks.get(path, 0) | mask
            elif op == _SELFQ:
                if node_values[arg0]:
                    selected_masks[path] = selected_masks.get(path, 0) | mask
            elif op == _SELFSEQ:
                if node_values[arg0] and _activate(states, arg1, mask):
                    worklist = _insert_sorted(worklist, arg1)
            elif op == _CHILD:
                child_states[arg0] = child_states.get(arg0, 0) | mask
            elif op == _DESC:
                # desc-or-self: continuation fires here too, and the DESC
                # state itself flows to the children.
                if _activate(states, arg0, mask):
                    worklist = _insert_sorted(worklist, arg0)
                child_states[j] = child_states.get(j, 0) | mask
            else:  # non-path entry reached as a state: impossible by construction
                raise AssertionError(f"non-path entry {j} activated as automaton state")

        if child_states:
            for index, child in enumerate(node.children):
                stack.append((child, path + (index,), dict(child_states)))

    selected: dict[int, list[NodePath]] = {j: [] for j in origins}
    for path, mask in selected_masks.items():
        for j in origins:
            if mask & origin_bit[j]:
                selected[j].append(path)
    exits: dict[int, dict[str, set[int]]] = {j: {} for j in origins}
    for (sub_id, state), mask in exit_masks.items():
        for j in origins:
            if mask & origin_bit[j]:
                exits[j].setdefault(sub_id, set()).add(state)
    return SelectionTable(
        fragment_id=fragment.fragment_id,
        selected={j: tuple(sorted(paths)) for j, paths in selected.items()},
        exits={
            j: {sub: frozenset(states) for sub, states in exit_map.items()}
            for j, exit_map in exits.items()
        },
    )


def _activate(states: dict[int, int], j: int, mask: int) -> bool:
    """Merge ``mask`` into state ``j``; True if new origins were added."""
    previous = states.get(j, 0)
    merged = previous | mask
    states[j] = merged
    return merged != previous


def _insert_sorted(worklist: list[int], j: int) -> list[int]:
    if j in worklist:
        return worklist
    worklist.append(j)
    worklist.sort(reverse=True)
    return worklist


class SelectionEngine(Engine):
    """Distributed node selection with at most two visits per site.

    Batched: :meth:`select_many` runs the whole two-visit protocol once
    for a combined batch of selection queries -- the phase-2 automaton
    pass already computes tables for *every* path entry, so per-query
    answers only differ in which start states the coordinator composes
    from.  :meth:`select` is the batch-of-one special case.
    """

    name = "ParBoX-Select"

    def select(self, qlist: QList) -> SelectionResult:
        """Evaluate a selection query (a path or a union of paths)."""
        batch = self.select_many([qlist])
        return SelectionResult(paths=batch.selections[0], result=batch.result)

    def select_many(
        self, batch: Union[BatchPlan, Iterable[Union[str, QList]]]
    ) -> SelectionBatch:
        """Evaluate a batch of selection queries in one two-visit round."""
        plan = coerce_plan(batch)
        combined = plan.combined
        # One start-state set per *unique* segment (duplicates share an
        # answer entry, hence identical states); building them validates
        # every member query's shape before any site is touched.
        starts_by_segment: dict[int, frozenset[int]] = {}
        for segment, answer_index in zip(plan.segment_of, plan.answer_indices):
            if segment not in starts_by_segment:
                starts_by_segment[segment] = initial_states(
                    combined, answer_index=answer_index
                )
        run = self._new_run()
        source_tree = self.cluster.source_tree()
        coordinator = source_tree.coordinator_site

        # ---- Visit 1: ParBoX stage 2 + full system solution -------------
        # Dispatched through the site executor exactly like ParBoX.
        triplets, phase1_times = self._broadcast_stage(
            run, plan, combined.wire_bytes(), reply=True
        )

        (solution, solve_seconds) = run.compute(
            # Eager: phase 2 reads every fragment's variables, so the
            # lazy resolver would materialize them all anyway.
            coordinator, lambda: build_equation_system(triplets, eager=True).solve_all()
        )
        elapsed = run.join(phase1_times) + solve_seconds

        # ---- Visit 2: conditional selection tables -----------------------
        tables: dict[str, SelectionTable] = {}
        phase2_times: dict[str, float] = {}
        for site_id in source_tree.sites():
            run.visit(site_id)
            env_bytes = 0
            site_seconds = 0.0
            reply_bytes = 0
            for fragment_id in source_tree.fragments_of(site_id):
                fragment = self.cluster.fragment(fragment_id)
                virtual_env = {
                    var: value
                    for var, value in solution.items()
                    if var.owner in fragment.sub_fragment_ids()
                }
                env_bytes += 8 * len(virtual_env)
                (table, seconds) = run.compute(
                    site_id,
                    lambda f=fragment, e=virtual_env: selection_table(f, combined, e),
                )
                run.add_ops(fragment.size(), fragment.size() * len(combined))
                for segment_index, (_, length) in enumerate(plan.segments):
                    run.add_segment_ops(segment_index, fragment.size() * length)
                tables[fragment_id] = table
                site_seconds += seconds
                reply_bytes += table.wire_bytes()
            request_seconds = run.message(coordinator, site_id, env_bytes or 16, MSG_CONTROL)
            reply_seconds = run.message(site_id, coordinator, reply_bytes, MSG_TRIPLET)
            phase2_times[site_id] = request_seconds + site_seconds + reply_seconds
        elapsed += run.join(phase2_times)

        # ---- Composition over the fragment tree, once per unique query ---
        (composed, compose_seconds) = run.compute(
            coordinator,
            lambda: {
                segment: _compose(tables, source_tree, starts, self.cluster)
                for segment, starts in starts_by_segment.items()
            },
        )
        elapsed += compose_seconds
        per_query_paths = [composed[segment] for segment in plan.segment_of]
        answers = [bool(paths) for paths in per_query_paths]
        result = self._result(
            any(answers),
            run,
            elapsed,
            selected=sum(len(paths) for paths in composed.values()),
            batch_size=len(plan),
            unique_queries=plan.unique_count,
        )
        return SelectionBatch(
            selections=tuple(per_query_paths),
            result=result,
            per_query=attribute_costs(plan, answers, run.metrics),
        )


def _compose(
    tables: Mapping[str, SelectionTable],
    source_tree,
    starts: frozenset[int],
    cluster,
) -> tuple[NodePath, ...]:
    """Coordinator-local composition of the per-fragment tables."""
    attachment = _attachment_paths(source_tree, cluster)
    selected: set[NodePath] = set()
    # active[fragment] = set of entry states at its root
    active: dict[str, set[int]] = {source_tree.root_fragment_id: set(starts)}
    for fragment_id in source_tree.iter_fragments_preorder():
        states = active.get(fragment_id)
        if not states:
            continue
        table = tables[fragment_id]
        base = attachment[fragment_id]
        child_activation: dict[str, set[int]] = {}
        for state in states:
            for path in table.selected.get(state, ()):
                selected.add(base + path)
            for sub_id, exit_states in table.exits.get(state, {}).items():
                child_activation.setdefault(sub_id, set()).update(exit_states)
        for sub_id, exit_states in child_activation.items():
            active.setdefault(sub_id, set()).update(exit_states)
    return tuple(sorted(selected))


def _attachment_paths(source_tree, cluster) -> dict[str, NodePath]:
    """Absolute child-index path of each fragment's root in the document."""
    paths: dict[str, NodePath] = {source_tree.root_fragment_id: ()}
    for fragment_id in source_tree.iter_fragments_preorder():
        fragment = cluster.fragment(fragment_id)
        base = paths[fragment_id]
        # Locate each virtual node's child-index path inside the fragment.
        stack: list[tuple[XMLNode, NodePath]] = [(fragment.root, ())]
        while stack:
            node, path = stack.pop()
            if node.is_virtual and node.fragment_ref:
                paths[node.fragment_ref] = base + path
                continue
            for index, child in enumerate(node.children):
                stack.append((child, path + (index,)))
    return paths


def select_centralized(tree, qlist: QList) -> tuple[NodePath, ...]:
    """Oracle: the same selection on a whole (unfragmented) document."""
    starts = initial_states(qlist)
    fragment = Fragment("whole", tree.root)
    table = selection_table(fragment, qlist, {})
    out: set[NodePath] = set()
    for state in starts:
        out.update(table.selected[state])
    return tuple(sorted(out))


__all__ = [
    "SelectionEngine",
    "SelectionResult",
    "SelectionBatch",
    "SelectionTable",
    "selection_table",
    "select_centralized",
    "ground_values_by_node",
    "path_entry_indices",
    "initial_states",
]
