"""Distributed trace propagation and a bounded in-memory span store.

A :class:`TraceContext` is the (trace_id, span_id) pair that rides the
wire: a trailing optional field on ``QueryRequest``/``ExecuteRequest``
and an extra trailing element on the process-executor pipe protocol --
both tolerated by old peers because the protocol accepts omitted
trailing defaults.  Each hop that does timed work opens a
:class:`SpanTimer` parented on the inbound context and ships the
finished :class:`Span` back with its reply, so one client batch
assembles into a single connected tree: gateway -> coordinator dispatch
-> every visited site server (or resident worker).

Spans cross process boundaries as plain 8-tuples (restricted-unpickler
safe) and are collected into a bounded :class:`SpanStore` with JSON
export; :func:`render_spans` draws the tree, extending the simulated
``distsim/trace.py`` timeline to real deployments (``repro trace``).

In-process tracing mirrors the metrics module's guard: :func:`span`
is a no-op context manager unless :func:`install_spans` has installed a
collector (one module attribute check on the hot path).
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TraceContext",
    "Span",
    "SpanTimer",
    "SpanStore",
    "new_trace_id",
    "new_span_id",
    "render_spans",
    "load_spans",
    "active_context",
    "span",
    "install_spans",
    "uninstall_spans",
    "installed_spans",
]


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagated half of a span: which trace, which parent."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(wire: Sequence[str]) -> Optional["TraceContext"]:
        """Decode a wire tuple; tolerate () (tracing off) and bare
        (trace_id,) (caller wants a trace but has no parent span)."""
        if not wire:
            return None
        trace_id = str(wire[0])
        span_id = str(wire[1]) if len(wire) > 1 else ""
        if not trace_id:
            return None
        return TraceContext(trace_id, span_id)


@dataclass(frozen=True)
class Span:
    """One completed timed hop."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    component: str
    start: float  # epoch seconds
    duration: float  # seconds
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_obj(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_obj(obj: Mapping[str, object]) -> "Span":
        return Span(
            trace_id=str(obj["trace_id"]),
            span_id=str(obj["span_id"]),
            parent_id=(str(obj["parent_id"]) if obj.get("parent_id") else None),
            name=str(obj["name"]),
            component=str(obj["component"]),
            start=float(obj["start"]),
            duration=float(obj["duration"]),
            attrs=dict(obj.get("attrs") or {}),
        )

    def to_wire(self) -> Tuple[object, ...]:
        """Plain tuple of scalars/dict: safe through the restricted
        unpickler and the pipe protocol.  parent_id None travels as ''."""
        return (
            self.trace_id,
            self.span_id,
            self.parent_id or "",
            self.name,
            self.component,
            self.start,
            self.duration,
            dict(self.attrs),
        )

    @staticmethod
    def from_wire(wire: Sequence[object]) -> "Span":
        trace_id, span_id, parent_id, name, component, start, duration, attrs = wire
        return Span(
            trace_id=str(trace_id),
            span_id=str(span_id),
            parent_id=(str(parent_id) or None),
            name=str(name),
            component=str(component),
            start=float(start),
            duration=float(duration),
            attrs=dict(attrs),  # type: ignore[arg-type]
        )


class SpanTimer:
    """Open a span now, ``finish()`` it later.

    Wall-clock start comes from ``time.time()`` (cross-process
    alignment for rendering); duration from ``perf_counter``.
    """

    def __init__(
        self,
        trace_id: str,
        parent_id: Optional[str],
        name: str,
        component: str,
        **attrs: object,
    ):
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id or None
        self.name = name
        self.component = component
        self.attrs: Dict[str, object] = dict(attrs)
        self.start = time.time()
        self._t0 = time.perf_counter()

    def context(self) -> TraceContext:
        """The context children of this span should be parented on."""
        return TraceContext(self.trace_id, self.span_id)

    def finish(self, store: Optional["SpanStore"] = None, **extra_attrs: object) -> Span:
        self.attrs.update(extra_attrs)
        done = Span(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            component=self.component,
            start=self.start,
            duration=time.perf_counter() - self._t0,
            attrs=dict(self.attrs),
        )
        if store is not None:
            store.record(done)
        return done


class SpanStore:
    """Bounded FIFO of finished spans with JSON export."""

    def __init__(self, capacity: int = 4096):
        self._spans: deque = deque(maxlen=capacity)

    def record(self, span: Span) -> None:
        self._spans.append(span)

    def ingest_wire(self, wires: Iterable[Sequence[object]]) -> None:
        for wire in wires:
            self._spans.append(Span.from_wire(wire))

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        if trace_id is None:
            return list(self._spans)
        return [s for s in self._spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, oldest first."""
        seen: Dict[str, None] = {}
        for s in self._spans:
            seen.setdefault(s.trace_id, None)
        return list(seen)

    def export_obj(self, trace_id: Optional[str] = None) -> Dict[str, object]:
        return {"spans": [s.to_obj() for s in self.spans(trace_id)]}

    def export_json(self, trace_id: Optional[str] = None, indent: int = 2) -> str:
        return json.dumps(self.export_obj(trace_id), indent=indent, sort_keys=True)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


def load_spans(obj: Mapping[str, object]) -> List[Span]:
    """Inverse of :meth:`SpanStore.export_obj`."""
    return [Span.from_obj(entry) for entry in obj.get("spans", ())]  # type: ignore[union-attr]


def render_spans(spans: Sequence[Span], trace_id: Optional[str] = None) -> str:
    """Draw one trace as an indented tree, children ordered by start.

    Orphan spans (parent not in the set -- e.g. evicted from the
    bounded store) are promoted to roots rather than dropped.
    """
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
    if not spans:
        return "(no spans)"
    by_id = {s.span_id: s for s in spans}
    children: Dict[Optional[str], List[Span]] = {}
    roots: List[Span] = []
    for s in spans:
        if s.parent_id and s.parent_id in by_id:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))

    lines: List[str] = []
    trace_ids = sorted({s.trace_id for s in spans})
    lines.append(f"trace {', '.join(trace_ids)}  ({len(spans)} spans)")

    def walk(span_obj: Span, depth: int) -> None:
        indent = "  " * depth
        ms = span_obj.duration * 1000.0
        attrs = ""
        if span_obj.attrs:
            inner = ", ".join(f"{k}={span_obj.attrs[k]}" for k in sorted(span_obj.attrs))
            attrs = f"  [{inner}]"
        lines.append(f"{indent}{span_obj.name}  ({span_obj.component}, {ms:.2f} ms){attrs}")
        for child in children.get(span_obj.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Optional in-process collector + ambient context.  ``span()`` costs one
# module attribute check when no collector is installed.

_COLLECTOR: Optional[SpanStore] = None
_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_obs_trace_ctx", default=None
)


def install_spans(store: Optional[SpanStore] = None) -> SpanStore:
    global _COLLECTOR
    if store is None:
        store = SpanStore()
    _COLLECTOR = store
    return store


def uninstall_spans() -> None:
    global _COLLECTOR
    _COLLECTOR = None


def installed_spans() -> Optional[SpanStore]:
    return _COLLECTOR


def active_context() -> Optional[TraceContext]:
    """The ambient context, or None (fast) when tracing is off."""
    if _COLLECTOR is None:
        return None
    return _CURRENT.get()


@contextlib.contextmanager
def span(name: str, component: str, **attrs: object):
    """Record a span around a block when a collector is installed.

    Starts a fresh trace when there is no ambient context; nests under
    it otherwise.  Yields the :class:`SpanTimer` (or None when off).
    """
    if _COLLECTOR is None:
        yield None
        return
    parent = _CURRENT.get()
    if parent is None:
        timer = SpanTimer(new_trace_id(), None, name, component, **attrs)
    else:
        timer = SpanTimer(parent.trace_id, parent.span_id, name, component, **attrs)
    token = _CURRENT.set(timer.context())
    try:
        yield timer
    finally:
        _CURRENT.reset(token)
        timer.finish(_COLLECTOR)
