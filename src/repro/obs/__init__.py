"""Unified telemetry: metrics registry, trace propagation, event logs.

The paper's argument is a cost ledger, but until this package the
*live* system (serving tier, resident workers, stream maintainer)
could only be observed through ad-hoc ``stats`` Counters and per-run
:class:`~repro.distsim.metrics.Metrics` objects that die with the
call.  Three leaf modules fix that (this package imports nothing from
the rest of ``repro``, so every layer may depend on it):

* :mod:`repro.obs.metrics` -- labeled counters, gauges and fixed-bucket
  histograms behind a lock-safe :class:`~repro.obs.metrics.MetricsRegistry`
  with ``snapshot()`` and Prometheus text exposition.  Serving
  components own always-on per-process registries (scraped over the
  wire via ``MetricsRequest``); in-process components (executors,
  maintainer, sessions) record only when a process-wide registry is
  :func:`~repro.obs.metrics.install`-ed, guarded by one attribute
  check so the hot path stays free when nobody is watching.
* :mod:`repro.obs.trace` -- a :class:`~repro.obs.trace.TraceContext`
  carried on the wire (``QueryRequest``/``ExecuteRequest`` trailing
  fields, and the process-executor pipe protocol), per-hop
  :class:`~repro.obs.trace.Span` records collected into a bounded
  :class:`~repro.obs.trace.SpanStore`, JSON export and a tree renderer
  -- the real-deployment extension of the simulated
  :class:`~repro.distsim.trace.Trace` timeline.
* :mod:`repro.obs.logging` -- structured JSON event logs (one line per
  request / retry / repush / shed, with ``trace_id`` correlation),
  flushed per line and size-rotated, replacing the serving tier's bare
  text logs under ``REPRO_SERVING_LOG_DIR``.
"""

from repro.obs.logging import (
    EventLog,
    JsonLineHandler,
    emit,
    event_log,
    install_event_log,
    uninstall_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_percentiles,
    install,
    installed,
    uninstall,
)
from repro.obs.trace import (
    Span,
    SpanStore,
    SpanTimer,
    TraceContext,
    active_context,
    install_spans,
    installed_spans,
    new_span_id,
    new_trace_id,
    render_spans,
    span,
    uninstall_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_percentiles",
    "install",
    "installed",
    "uninstall",
    "Span",
    "SpanStore",
    "SpanTimer",
    "TraceContext",
    "active_context",
    "install_spans",
    "installed_spans",
    "new_span_id",
    "new_trace_id",
    "render_spans",
    "span",
    "uninstall_spans",
    "EventLog",
    "JsonLineHandler",
    "emit",
    "event_log",
    "install_event_log",
    "uninstall_event_log",
]
