"""Structured JSON event logs for the serving tier.

An :class:`EventLog` writes one JSON object per line to
``<directory>/<component>.jsonl``, flushed per line (a crashed site
server leaves complete evidence) and size-rotated to ``.jsonl.1`` so a
soak run cannot fill the disk.  Events carry a wall-clock ``ts`` and
whatever fields the caller passes -- serving components always include
``trace_id`` when the request carried one, so a slow batch's log lines
and its span tree correlate by id.

:class:`JsonLineHandler` adapts stdlib ``logging`` records from the
``repro.serving.*`` loggers into the same files, replacing the bare
text ``FileHandler`` the cluster harness used to install.

Module-level :func:`emit` mirrors the metrics/trace pattern: a no-op
(one attribute check) until :func:`install_event_log` points it at a
directory.
"""

from __future__ import annotations

import io
import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Dict, Optional

__all__ = [
    "EventLog",
    "JsonLineHandler",
    "emit",
    "event_log",
    "install_event_log",
    "uninstall_event_log",
]

_DEFAULT_MAX_BYTES = 5 * 1024 * 1024


def _plain(value: object) -> object:
    """Coerce arbitrary field values to JSON-able scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class EventLog:
    """Per-component JSON-lines files with flush-per-line and rotation."""

    def __init__(self, directory: os.PathLike, max_bytes: int = _DEFAULT_MAX_BYTES):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._streams: Dict[str, io.TextIOWrapper] = {}

    def _path(self, component: str) -> Path:
        safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in component)
        return self.directory / f"{safe}.jsonl"

    def _stream(self, component: str) -> io.TextIOWrapper:
        stream = self._streams.get(component)
        if stream is None or stream.closed:
            stream = open(self._path(component), "a", encoding="utf-8")
            self._streams[component] = stream
        return stream

    def _rotate_if_needed(self, component: str, stream: io.TextIOWrapper) -> io.TextIOWrapper:
        path = self._path(component)
        try:
            size = stream.tell()
        except (OSError, ValueError):
            size = 0
        if size < self.max_bytes:
            return stream
        stream.close()
        rotated = path.with_suffix(path.suffix + ".1")
        try:
            os.replace(path, rotated)
        except OSError:
            pass
        fresh = open(path, "a", encoding="utf-8")
        self._streams[component] = fresh
        return fresh

    def emit(self, component: str, event: str, **fields: object) -> None:
        record = {"ts": time.time(), "event": event}
        for key, value in fields.items():
            record[key] = _plain(value)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            stream = self._rotate_if_needed(component, self._stream(component))
            stream.write(line + "\n")
            stream.flush()

    def close(self) -> None:
        with self._lock:
            for stream in self._streams.values():
                try:
                    stream.close()
                except OSError:
                    pass
            self._streams.clear()


class JsonLineHandler(logging.Handler):
    """Route stdlib logging records into an :class:`EventLog`.

    The component is the logger-name suffix after ``base`` (e.g.
    ``repro.serving.coordinator`` -> ``coordinator``).
    """

    def __init__(
        self,
        event_log: EventLog,
        base: str = "repro.serving",
        component: Optional[str] = None,
    ):
        super().__init__()
        self.event_log = event_log
        self.base = base
        #: When set, every record routes to this one component file --
        #: used by site-server processes so concurrent sites never share
        #: a file (``site-S1.jsonl``, not one interleaved ``site.jsonl``).
        self.component = component

    def emit(self, record: logging.LogRecord) -> None:  # noqa: A003
        try:
            component = self.component
            if component is None:
                component = record.name
                prefix = self.base + "."
                if component.startswith(prefix):
                    component = component[len(prefix):]
                elif component == self.base:
                    component = component.rsplit(".", 1)[-1]
            self.event_log.emit(
                component,
                "log",
                level=record.levelname.lower(),
                message=record.getMessage(),
            )
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


# ---------------------------------------------------------------------------
# Optional process-global event log; ``emit`` is a cheap no-op until
# ``install_event_log`` is called.

_EVENT_LOG: Optional[EventLog] = None


def install_event_log(directory: os.PathLike, max_bytes: int = _DEFAULT_MAX_BYTES) -> EventLog:
    global _EVENT_LOG
    if _EVENT_LOG is not None:
        _EVENT_LOG.close()
    _EVENT_LOG = EventLog(directory, max_bytes=max_bytes)
    return _EVENT_LOG


def uninstall_event_log() -> None:
    global _EVENT_LOG
    if _EVENT_LOG is not None:
        _EVENT_LOG.close()
    _EVENT_LOG = None


def event_log() -> Optional[EventLog]:
    return _EVENT_LOG


def emit(component: str, event: str, **fields: object) -> None:
    if _EVENT_LOG is not None:
        _EVENT_LOG.emit(component, event, **fields)
