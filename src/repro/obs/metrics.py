"""Lock-safe metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named bag of instruments.  Instruments
are created idempotently (``registry.counter("x", ...)`` twice returns
the same object; re-registering under a different type raises) and may
be labeled: ``counter.labels(event="retry").inc()`` keeps one value per
label combination.  ``snapshot()`` returns a plain JSON-able dict and
``render_text()`` emits Prometheus text exposition, so the same
registry backs both the wire-level ``MetricsReply`` snapshot and the
scrape endpoint.

Two usage modes:

* **Per-component registries** -- the gateway and each site server own
  one (``Gateway.registry`` / ``SiteServer.registry``) that is always
  on; recording costs one dict update under a lock, negligible next to
  a network round trip.
* **Process-global registry** -- in-process components on the query hot
  path (resident executors, stream maintainer, sessions) record *only*
  when :func:`install` has been called, guarded by a single module
  attribute check (``if _REGISTRY is not None``) so the uninstrumented
  hot path stays within the ``bench_hotpath.py`` regression gate.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "histogram_percentiles",
    "install",
    "installed",
    "uninstall",
]

# Seconds-scale latency buckets: sub-millisecond site kernels up to
# multi-second cold batches.  Fixed at registration so snapshots from
# different processes merge cleanly.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(labelnames: Sequence[str], labels: Mapping[str, str]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Instrument:
    """Common shell: name, help text, label plumbing, shared lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str], lock: threading.Lock):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._values: Dict[Tuple[str, ...], object] = {}

    def _child(self, key: Tuple[str, ...]):
        raise NotImplementedError

    def labels(self, **labels: str):
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._values.get(key)
            if child is None:
                child = self._child(key)
                self._values[key] = child
        return child

    def _bare(self):
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labeled; use .labels(...)")
        return self.labels()

    def _snapshot_values(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key, child in sorted(self._values.items()):
            label_str = ",".join(
                f"{name}={value}" for name, value in zip(self.labelnames, key)
            )
            out[label_str] = child._snapshot()  # type: ignore[attr-defined]
        return out


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def _snapshot(self) -> float:
        return self.value


class Counter(_Instrument):
    kind = "counter"

    def _child(self, key):
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._bare().inc(amount)


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def _snapshot(self) -> float:
        return self.value


class Gauge(_Instrument):
    kind = "gauge"

    def _child(self, key):
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._bare().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._bare().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._bare().dec(amount)


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: Tuple[float, ...]):
        self._lock = lock
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            idx = bisect.bisect_left(self.buckets, value)
            if idx < len(self.counts):
                self.counts[idx] += 1

    def _snapshot(self) -> Dict[str, object]:
        # Cumulative bucket counts, Prometheus-style; the final +Inf
        # bucket is implied by "count".
        cumulative = []
        running = 0
        for le, n in zip(self.buckets, self.counts):
            running += n
            cumulative.append([le, running])
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames, lock)
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = ordered

    def _child(self, key):
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._bare().observe(value)


def histogram_percentiles(
    snapshot_value: Mapping[str, object], quantiles: Iterable[float]
) -> Dict[float, Optional[float]]:
    """Estimate quantiles from one histogram snapshot value.

    ``snapshot_value`` is the ``{"buckets": [[le, cumulative], ...],
    "sum": s, "count": n}`` dict produced by :meth:`MetricsRegistry.snapshot`.
    Uses linear interpolation within the containing bucket (lower edge 0
    for the first); observations beyond the last bucket clamp to its
    upper edge.  Returns None per quantile when the histogram is empty.
    """
    buckets = list(snapshot_value.get("buckets", ()))  # type: ignore[union-attr]
    count = int(snapshot_value.get("count", 0))  # type: ignore[union-attr]
    out: Dict[float, Optional[float]] = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of [0, 1]")
        if count == 0 or not buckets:
            out[q] = None
            continue
        rank = q * count
        result = float(buckets[-1][0])
        prev_le, prev_cum = 0.0, 0
        for le, cum in buckets:
            if cum >= rank:
                if cum == prev_cum:
                    result = float(le)
                else:
                    frac = (rank - prev_cum) / (cum - prev_cum)
                    result = prev_le + (float(le) - prev_le) * max(frac, 0.0)
                break
            prev_le, prev_cum = float(le), cum
        out[q] = result
    return out


class MetricsRegistry:
    """A named, lock-safe collection of instruments."""

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def snapshot(self) -> Dict[str, object]:
        """Plain-container snapshot, safe for the restricted unpickler."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, object] = {}
        for instrument in instruments:
            out[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "values": instrument._snapshot_values(),
            }
        return out

    def render_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        return render_snapshot_text(self.snapshot())


def _format_labels(labelnames: Sequence[str], label_str: str, extra: str = "") -> str:
    parts: List[str] = []
    if label_str:
        values = label_str.split(",")
        for pair in values:
            name, _, value = pair.partition("=")
            parts.append(f'{name}="{value}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_snapshot_text(snapshot: Mapping[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]  # type: ignore[index]
        help_text = entry.get("help", "")  # type: ignore[union-attr]
        labelnames = entry.get("labelnames", [])  # type: ignore[union-attr]
        values = entry.get("values", {})  # type: ignore[union-attr]
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for label_str in sorted(values):
            value = values[label_str]
            if kind == "histogram":
                for le, cum in value["buckets"]:
                    labels = _format_labels(labelnames, label_str, f'le="{le}"')
                    lines.append(f"{name}_bucket{labels} {cum}")
                inf_labels = _format_labels(labelnames, label_str, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf_labels} {value['count']}")
                labels = _format_labels(labelnames, label_str)
                lines.append(f"{name}_sum{labels} {value['sum']}")
                lines.append(f"{name}_count{labels} {value['count']}")
            else:
                labels = _format_labels(labelnames, label_str)
                lines.append(f"{name}{labels} {value}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Optional process-global registry.  Hot-path components guard every
# record with ``if _REGISTRY is not None`` -- one attribute load when
# nobody is collecting.

_REGISTRY: Optional[MetricsRegistry] = None


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (or create and install) the process-global registry."""
    global _REGISTRY
    if registry is None:
        registry = MetricsRegistry(namespace="process")
    _REGISTRY = registry
    return registry


def uninstall() -> None:
    global _REGISTRY
    _REGISTRY = None


def installed() -> Optional[MetricsRegistry]:
    return _REGISTRY
