"""The typed update log: what publishers do to a fragmented document.

The paper's Section 5 names four update operations -- ``insNode``,
``delNode``, ``splitFragments``, ``mergeFragments`` -- and proves that
maintenance after any of them is local to the touched fragments.  This
module turns them (plus a ``relabel`` content edit and a
``moveFragments`` placement change, the natural fifth and sixth) into
*value objects* so that an update stream can be generated, logged,
replayed and batch-applied:

* every op is a frozen dataclass naming its target fragment and (where
  needed) a node by its stable ``node_id``;
* :meth:`UpdateOp.apply` mutates the cluster and returns an
  :class:`UpdateEffect` -- which fragments are now dirty, which were
  created or removed, and which fragment data *migrated* between sites
  (a :class:`Migration` per cross-site shipment, so the maintainer can
  meter rebalancing traffic without re-deriving it);
* :func:`apply_updates` applies a whole batch in order and folds the
  effects into one :class:`AppliedBatch`, the input the
  :class:`~repro.stream.maintainer.StreamMaintainer` maintains from.

:class:`MoveFragment` is the op the placement optimizer
(:mod:`repro.placement`) emits alongside split/merge: it re-assigns one
fragment to another site.  Content, triplets and standing answers are
untouched by a move -- only the placement (and therefore future cost)
changes -- so a move dirties nothing; what it *does* produce is a
:class:`Migration` whose byte cost the maintainer charges as
``MSG_MIGRATE`` traffic.  Splits that target another site and merges
whose endpoints live on different sites migrate data the same way.

Node addressing uses ``node_id`` (not child-index paths) deliberately:
ids are stable under sibling insertion/deletion, so ops inside one
batch cannot invalidate each other's targets unless one genuinely
deletes the other's node -- which :func:`apply_updates` reports as the
error it is.

Checked by ``tests/test_stream_updates.py`` (per-op semantics, batch
folding, mid-batch failure contract), ``tests/test_placement.py``
(``MoveFragment`` migrates without dirtying) and the property suites
``tests/test_stream_maintainer.py`` /
``tests/test_rebalance_properties.py`` (random op streams, incremental
== from-scratch bitwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.distsim.cluster import Cluster
from repro.xmltree.node import XMLNode


class UpdateError(ValueError):
    """Raised when an update op cannot be applied to the cluster.

    When raised from :func:`apply_updates`, the ``applied`` attribute
    holds the :class:`AppliedBatch` of the ops that *did* apply before
    the failure (the document is already mutated by them).
    """

    applied: "AppliedBatch | None" = None


@dataclass(frozen=True)
class Migration:
    """One cross-site fragment-data shipment caused by an update op."""

    fragment_id: str
    origin: str
    target: str
    nbytes: int


@dataclass(frozen=True)
class UpdateEffect:
    """What one applied op did to the decomposition."""

    op: "UpdateOp"
    dirty: tuple[str, ...]
    created: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    migrated: tuple[Migration, ...] = ()


def _node_of(cluster: Cluster, fragment_id: str, node_id: int) -> XMLNode:
    if fragment_id not in cluster.fragmented_tree.fragments:
        raise UpdateError(f"unknown fragment {fragment_id!r}")
    try:
        return cluster.fragment(fragment_id).node_by_id(node_id)
    except KeyError:
        raise UpdateError(
            f"node {node_id} not found in fragment {fragment_id} "
            "(deleted earlier in the batch?)"
        ) from None


class UpdateOp:
    """Base class: one edit against one fragment of the cluster."""

    fragment_id: str

    def apply(self, cluster: Cluster) -> UpdateEffect:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class InsNode(UpdateOp):
    """``insNode(A, v)``: attach a fresh leaf under ``parent_node_id``."""

    fragment_id: str
    parent_node_id: int
    label: str
    text: Optional[str] = None

    def apply(self, cluster: Cluster) -> UpdateEffect:
        parent = _node_of(cluster, self.fragment_id, self.parent_node_id)
        if parent.is_virtual:
            raise UpdateError("cannot insert under a virtual node")
        parent.add_child(XMLNode(self.label, text=self.text))
        cluster.fragment(self.fragment_id).bump_epoch()
        return UpdateEffect(self, dirty=(self.fragment_id,))

    def describe(self) -> str:
        return f"ins {self.label!r} under node {self.parent_node_id} of {self.fragment_id}"


@dataclass(frozen=True)
class DelNode(UpdateOp):
    """``delNode(v)``: detach the subtree rooted at ``node_id``."""

    fragment_id: str
    node_id: int

    def apply(self, cluster: Cluster) -> UpdateEffect:
        node = _node_of(cluster, self.fragment_id, self.node_id)
        fragment = cluster.fragment(self.fragment_id)
        if node is fragment.root:
            raise UpdateError("cannot delete a fragment's root")
        if any(sub.is_virtual for sub in node.iter_subtree()):
            # Deleting a subtree holding virtual leaves would orphan
            # whole sub-fragments; merge them back first.
            raise UpdateError("subtree contains virtual nodes; mergeFragments first")
        node.detach()
        fragment.bump_epoch()
        return UpdateEffect(self, dirty=(self.fragment_id,))

    def describe(self) -> str:
        return f"del node {self.node_id} of {self.fragment_id}"


@dataclass(frozen=True)
class Relabel(UpdateOp):
    """Edit a node's label and/or text in place (content update)."""

    fragment_id: str
    node_id: int
    label: Optional[str] = None
    text: Optional[str] = None

    def apply(self, cluster: Cluster) -> UpdateEffect:
        node = _node_of(cluster, self.fragment_id, self.node_id)
        if node.is_virtual:
            raise UpdateError("cannot relabel a virtual node")
        if self.label is not None:
            node.label = self.label
        if self.text is not None:
            node.text = self.text
        cluster.fragment(self.fragment_id).bump_epoch()
        return UpdateEffect(self, dirty=(self.fragment_id,))

    def describe(self) -> str:
        parts = []
        if self.label is not None:
            parts.append(f"label={self.label!r}")
        if self.text is not None:
            parts.append(f"text={self.text!r}")
        return f"relabel node {self.node_id} of {self.fragment_id} ({', '.join(parts)})"


@dataclass(frozen=True)
class SplitFragment(UpdateOp):
    """``splitFragments(v)``: carve a new fragment out at ``node_id``."""

    fragment_id: str
    node_id: int
    new_fragment_id: Optional[str] = None
    target_site: Optional[str] = None

    def apply(self, cluster: Cluster) -> UpdateEffect:
        node = _node_of(cluster, self.fragment_id, self.node_id)
        origin = cluster.site_of(self.fragment_id)
        new_id = cluster.split_fragment(
            self.fragment_id, node, self.new_fragment_id, self.target_site
        )
        migrated: tuple[Migration, ...] = ()
        destination = cluster.site_of(new_id)
        if destination != origin:
            # The carved-out subtree physically leaves the origin site.
            migrated = (
                Migration(
                    new_id, origin, destination, cluster.fragment(new_id).wire_bytes()
                ),
            )
        return UpdateEffect(
            self, dirty=(self.fragment_id, new_id), created=(new_id,), migrated=migrated
        )

    def describe(self) -> str:
        suffix = f" -> {self.target_site}" if self.target_site else ""
        return f"split {self.fragment_id} at node {self.node_id}{suffix}"


@dataclass(frozen=True)
class MergeFragment(UpdateOp):
    """``mergeFragments(v)``: absorb ``child_fragment_id`` back."""

    fragment_id: str
    child_fragment_id: str

    def apply(self, cluster: Cluster) -> UpdateEffect:
        if self.fragment_id not in cluster.fragmented_tree.fragments:
            raise UpdateError(f"unknown fragment {self.fragment_id!r}")
        fragment = cluster.fragment(self.fragment_id)
        virtual = next(
            (
                node
                for node in fragment.virtual_nodes()
                if node.fragment_ref == self.child_fragment_id
            ),
            None,
        )
        if virtual is None:
            raise UpdateError(
                f"{self.child_fragment_id!r} is not a sub-fragment of {self.fragment_id!r}"
            )
        parent_site = cluster.site_of(self.fragment_id)
        child_site = cluster.site_of(self.child_fragment_id)
        migrated: tuple[Migration, ...] = ()
        if child_site != parent_site:
            # The absorbed data physically moves to the parent's site.
            migrated = (
                Migration(
                    self.child_fragment_id,
                    child_site,
                    parent_site,
                    cluster.fragment(self.child_fragment_id).wire_bytes(),
                ),
            )
        absorbed = cluster.merge_fragment(self.fragment_id, virtual)
        assert absorbed == self.child_fragment_id
        return UpdateEffect(
            self, dirty=(self.fragment_id,), removed=(absorbed,), migrated=migrated
        )

    def describe(self) -> str:
        return f"merge {self.child_fragment_id} back into {self.fragment_id}"


@dataclass(frozen=True)
class MoveFragment(UpdateOp):
    """``moveFragments(F, S)``: re-assign a fragment to another site.

    The rebalancing primitive: fragment content is untouched, so the
    cached triplets and every standing answer stay valid -- nothing is
    dirtied.  What changes is the placement (and with it the source
    tree and all future evaluation/maintenance costs), plus a one-off
    :class:`Migration` of the fragment's wire bytes when the target
    really is a different site.  Moving to the current site is the
    paper-style no-op: empty effect.
    """

    fragment_id: str
    target_site: str

    def apply(self, cluster: Cluster) -> UpdateEffect:
        if self.fragment_id not in cluster.fragmented_tree.fragments:
            raise UpdateError(f"unknown fragment {self.fragment_id!r}")
        origin = cluster.site_of(self.fragment_id)
        if origin == self.target_site:
            return UpdateEffect(self, dirty=())
        nbytes = cluster.fragment(self.fragment_id).wire_bytes()
        cluster.move_fragment(self.fragment_id, self.target_site)
        return UpdateEffect(
            self,
            dirty=(),
            migrated=(Migration(self.fragment_id, origin, self.target_site, nbytes),),
        )

    def describe(self) -> str:
        return f"move {self.fragment_id} to {self.target_site}"


#: The ops that change the decomposition or placement (not just content).
STRUCTURAL_OPS = (SplitFragment, MergeFragment, MoveFragment)


@dataclass(frozen=True)
class AppliedBatch:
    """The folded effect of one update batch, in application order."""

    effects: tuple[UpdateEffect, ...]
    dirty: tuple[str, ...]  # fragments needing re-evaluation (still alive)
    created: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    structural: bool = field(default=False)
    migrations: tuple[Migration, ...] = ()

    def __len__(self) -> int:
        return len(self.effects)

    @property
    def migration_bytes(self) -> int:
        """Total fragment data the batch shipped between sites."""
        return sum(migration.nbytes for migration in self.migrations)


def apply_updates(cluster: Cluster, ops: Sequence[UpdateOp]) -> AppliedBatch:
    """Apply a batch of ops in order; fold their effects.

    ``dirty`` lists every fragment whose content (or virtual-leaf
    structure) changed and that still exists after the batch, in
    first-touch order -- the set of fragments whose sites must re-run
    ``bottomUp``.  Fragments removed mid-batch (merges) drop out of the
    dirty set; fragments created mid-batch (splits) join it.

    Ops apply in order with no rollback (a real site applies edits as
    they arrive).  When one fails, the earlier ops *have already
    mutated the document*: the raised :class:`UpdateError` carries the
    partial fold as ``error.applied`` so a maintainer can still refresh
    the fragments the half-batch dirtied.
    """
    effects: list[UpdateEffect] = []
    dirty: dict[str, None] = {}
    created: dict[str, None] = {}
    removed: dict[str, None] = {}
    migrations: list[Migration] = []
    structural = False
    for op in ops:
        try:
            effect = op.apply(cluster)
        except UpdateError as error:
            error.applied = AppliedBatch(
                effects=tuple(effects),
                dirty=tuple(dirty),
                created=tuple(created),
                removed=tuple(removed),
                structural=structural,
                migrations=tuple(migrations),
            )
            raise
        effects.append(effect)
        structural = structural or isinstance(op, STRUCTURAL_OPS)
        migrations.extend(effect.migrated)
        for fragment_id in effect.dirty:
            dirty.setdefault(fragment_id)
        for fragment_id in effect.created:
            created.setdefault(fragment_id)
        for fragment_id in effect.removed:
            dirty.pop(fragment_id, None)
            if fragment_id in created:
                del created[fragment_id]
            else:
                removed.setdefault(fragment_id)
    return AppliedBatch(
        effects=tuple(effects),
        dirty=tuple(dirty),
        created=tuple(created),
        removed=tuple(removed),
        structural=structural,
        migrations=tuple(migrations),
    )


__all__ = [
    "UpdateOp",
    "InsNode",
    "DelNode",
    "Relabel",
    "SplitFragment",
    "MergeFragment",
    "MoveFragment",
    "Migration",
    "UpdateEffect",
    "AppliedBatch",
    "apply_updates",
    "UpdateError",
    "STRUCTURAL_OPS",
]
