"""``StreamMaintainer``: thousands of standing queries, kept live.

The paper's Section 5 bound -- after an update only the edited
fragment's site re-runs ``bottomUp`` and maintenance traffic is
``O(|q| card(F_j))``, independent of ``|T|`` and of the update size --
is realized here for a whole *batch* of standing queries at once:

1. **cache** -- for every live segment (unique compiled query) the
   maintainer caches each fragment's 0-based triplet slice and the
   segment's solved answer; creating a subscription evaluates *only its
   own segment* (a duplicate evaluates nothing at all);
2. **refresh** -- after an update batch
   (:func:`~repro.stream.updates.apply_updates`), only the dirty
   fragments' sites re-run ``bottomUp`` -- over the combined QList, one
   traversal per fragment however many queries stand -- dispatched as
   one :class:`~repro.distsim.executors.SiteJob` per dirty site through
   the run's executor, so dirty sites refresh concurrently under the
   ``threads``/``process`` strategies;
3. **ship** -- each refreshed combined triplet is split into
   per-segment slices (:meth:`~repro.stream.dirty.DirtyIndex.slices_of`)
   and **only the slices that differ from the cache** cross the
   network (``triplet-delta`` messages; a dirty site whose triplet did
   not move sends a control-sized ack);
4. **re-solve** -- only the segments owning a changed slice rebuild
   their (per-segment, hence small) Boolean equation system; every
   other standing answer is untouched;
5. **notify** -- answers that flipped are appended to the
   :class:`Changefeed` as ``(query, old, new)`` events, and the whole
   round is summarized in a :class:`MaintenanceRound` cost ledger.

Rebalancing rides the same path: a batch may carry
:class:`~repro.stream.updates.MoveFragment` ops (and splits/merges
targeting other sites), whose fragment-data shipments are metered as
``MSG_MIGRATE`` traffic (:attr:`~repro.distsim.metrics.Metrics.migration_bytes`
/ ``migration_visits``) *without* dirtying anything -- cached
per-segment triplets are placement-independent, so standing answers
survive a migration bitwise untouched.

Per-round costs, in ledger units: site work is one combined-QList
``bottomUp`` per dirty fragment (``O(Σ|q_i| · |F_dirty|)`` node x
entry ops); traffic is the changed slices only, worst case
``O(Σ|q_i| · card(F_dirty))`` formula terms plus control acks --
independent of ``|T|`` and of the update size, the paper's Section 5
bound extended to a whole standing book.

Hot-path notes: the per-fragment refresh runs ``bottomUp``'s bitset
ground kernel whenever the dirty fragment holds no virtual node (the
common case -- see :mod:`repro.core.bottom_up`), the combined QList's
compiled form is cached on the QList across rounds, and under the
``process`` executor the refreshed triplets return in the compact
bitmask+residue wire form (:meth:`~repro.core.vectors.VectorTriplet.to_compact`)
-- none of which moves the *simulated* ledger: ``triplet-delta`` bytes
stay defined over ``wire_bytes()`` and are bitwise identical across
kernels and executors (checked by ``tests/test_hotpath_kernel.py``).

Checked by ``tests/test_stream_maintainer.py`` (dirty-site-only
visits, delta-only shipping, oracle agreement across engines x
executors), ``tests/test_rebalance_properties.py`` (random
move/split/merge streams under live books) and the ``stream`` /
``placement`` experiments' shape checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.boolexpr.compose import DEFAULT_ALGEBRA, FormulaAlgebra
from repro.core.engine import CONTROL_BYTES, MSG_CONTROL, MSG_TRIPLET_DELTA
from repro.core.eval_st import answer_variable, build_equation_system
from repro.core.plan import BatchPlan, QueryCache
from repro.core.vectors import VectorTriplet
from repro.distsim.cluster import Cluster
from repro.distsim.executors import SiteExecutor, SiteJob, resolve_executor
from repro.distsim.metrics import Metrics
from repro.distsim.runtime import Run
from repro.obs import metrics as obs_metrics
from repro.stream.dirty import DirtyIndex, Segment, SegmentKey
from repro.stream.updates import (
    AppliedBatch,
    Migration,
    UpdateError,
    UpdateOp,
    apply_updates,
)
from repro.xpath.qlist import QList

Query = Union[str, QList]


@dataclass(frozen=True)
class ChangeEvent:
    """One standing query's answer flipped during one refresh round."""

    round_seq: int
    name: str
    query: Optional[str]  # the query's source text, when known
    old_answer: bool
    new_answer: bool


class Changefeed:
    """An append-only stream of :class:`ChangeEvent`\\ s.

    The maintainer appends; consumers either iterate the full history
    or :meth:`drain` the events they have not seen yet.
    """

    def __init__(self) -> None:
        self.events: list[ChangeEvent] = []
        self._cursor = 0

    def append(self, event: ChangeEvent) -> None:
        self.events.append(event)

    def drain(self) -> list[ChangeEvent]:
        """The events appended since the previous ``drain()``."""
        fresh = self.events[self._cursor :]
        self._cursor = len(self.events)
        return fresh

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclass(frozen=True)
class MaintenanceRound:
    """The ledger of one refresh round (one update batch)."""

    seq: int
    ops: tuple[str, ...]  # human-readable op descriptions
    dirty_fragments: tuple[str, ...]
    sites_visited: tuple[str, ...]
    traffic_bytes: int
    nodes_recomputed: int
    slices_shipped: int
    segments_resolved: int
    changed: tuple[str, ...]  # subscription names whose answer flipped
    events: tuple[ChangeEvent, ...]
    structural: bool
    metrics: Metrics = field(repr=False)
    #: Cross-site fragment-data shipments (rebalancing moves, off-site
    #: splits, cross-site merges) this round enacted.
    migrations: tuple[Migration, ...] = ()

    @property
    def triplet_changed(self) -> bool:
        """Did any dirty fragment's partial answer actually move?"""
        return self.slices_shipped > 0

    @property
    def migration_bytes(self) -> int:
        """One-off fragment-data bytes the round's migrations shipped."""
        return sum(migration.nbytes for migration in self.migrations)

    def is_localized(self) -> bool:
        """True when only dirty fragments' sites (and migration
        endpoints) participated."""
        endpoints = {m.origin for m in self.migrations} | {
            m.target for m in self.migrations
        }
        return len(set(self.sites_visited) - endpoints) <= len(self.dirty_fragments)


class StreamMaintainer:
    """Incremental maintenance of a batch of standing Boolean queries.

    ``executor`` follows the engine convention: a registry name is
    resolved and owned (closed by :meth:`close`), a pre-built
    :class:`~repro.distsim.executors.SiteExecutor` instance is shared
    and left to its builder.  ``cache`` lets a
    :class:`~repro.core.session.QuerySession` share its compiled-query
    cache with the maintainer it spawns.
    """

    def __init__(
        self,
        cluster: Cluster,
        algebra: Optional[FormulaAlgebra] = None,
        executor: Union[str, SiteExecutor, None] = None,
        cache: Optional[QueryCache] = None,
    ) -> None:
        self.cluster = cluster
        self.algebra = algebra or DEFAULT_ALGEBRA
        self.executor = resolve_executor(executor)
        self._owns_executor = not isinstance(executor, SiteExecutor)
        # Not `cache or ...`: an empty shared cache is falsy (len 0)
        # but must still be shared.
        self.cache = cache if cache is not None else QueryCache()
        self.index = DirtyIndex()
        self.changefeed = Changefeed()
        #: segment key -> fragment id -> the fragment's 0-based slice.
        self._triplets: dict[SegmentKey, dict[str, VectorTriplet]] = {}
        #: segment key -> the segment's solved Boolean answer.
        self._segment_answers: dict[SegmentKey, bool] = {}
        self._names: list[str] = []  # subscription order
        self._queries: dict[str, QList] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def subscribe(self, name: str, query: Query) -> bool:
        """Register a standing query; returns its current answer.

        A query compiling to an already-standing segment costs nothing
        beyond bookkeeping -- no site work, no solve.  A fresh segment
        is evaluated over every fragment (each site visited once, with
        the *segment's* QList only -- not the whole combined query) and
        solved once.
        """
        if name in self._queries:
            raise ValueError(f"subscription {name!r} already registered")
        # Compile before touching any state: a parse error must leave
        # the maintainer exactly as it was.
        qlist = self.cache.qlist(query)
        segment, is_new = self.index.subscribe(name, qlist)
        self._names.append(name)
        self._queries[name] = qlist
        if is_new:
            self._triplets[segment.key] = self._evaluate_segment(segment)
            self._segment_answers[segment.key] = self._solve_segment(segment)
        return self._segment_answers[segment.key]

    def unsubscribe(self, name: str) -> None:
        """Remove a standing query.

        Dropping a duplicate never re-solves anything; dropping a
        segment's last rider just forgets its caches -- the surviving
        segments' 0-based caches are untouched by the re-offsetting.
        """
        if name not in self._queries:
            raise ValueError(f"unknown subscription {name!r}")
        segment, removed = self.index.unsubscribe(name)
        self._names.remove(name)
        del self._queries[name]
        if removed:
            del self._triplets[segment.key]
            del self._segment_answers[segment.key]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered subscription names, in registration order."""
        return list(self._names)

    def answers(self) -> dict[str, bool]:
        """Current answer of every standing query."""
        return {
            name: self._segment_answers[self.index.segment_of(name).key]
            for name in self._names
        }

    def answer(self, name: str) -> bool:
        """Current answer of one standing query."""
        return self._segment_answers[self.index.segment_of(name).key]

    def plan(self) -> Optional[BatchPlan]:
        """The live combined plan (None when nothing stands)."""
        if not self._names:
            return None
        return self.index.plan(self._names)

    def combined_size(self) -> int:
        """|QList| of the combined standing query."""
        return len(self.index.combined()) if self._names else 0

    def duplicate_subscriptions(self) -> int:
        """Standing queries sharing another one's compiled segment."""
        return self.index.duplicate_count()

    def __len__(self) -> int:
        return len(self._names)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply(self, ops: Sequence[UpdateOp]) -> MaintenanceRound:
        """Apply one update batch to the cluster, then refresh.

        The batch mutates the document/decomposition *first*
        (:func:`~repro.stream.updates.apply_updates`); the refresh then
        touches exactly the dirty fragments' sites.  If an op fails
        mid-batch, the earlier ops have already mutated the document --
        their dirty fragments are refreshed *before* the error is
        re-raised, so the standing answers never silently diverge from
        the live document.
        """
        try:
            batch = apply_updates(self.cluster, list(ops))
        except UpdateError as error:
            partial = error.applied
            if partial is not None and partial.effects:
                self._refresh(partial)
            raise
        return self._refresh(batch)

    def refresh(self, fragment_ids: Sequence[str]) -> MaintenanceRound:
        """Refresh after out-of-band edits inside the given fragments.

        For callers that mutate fragment contents directly (the
        registry's ``notify_fragment_updated`` contract) instead of
        going through the typed update log.  Unknown fragment ids are
        an error here -- silently skipping one would leave a caller
        serving stale answers with no signal.  (``apply`` tolerates
        mid-batch removals; that path filters internally.)
        """
        unknown = [
            fragment_id
            for fragment_id in fragment_ids
            if fragment_id not in self.cluster.fragmented_tree.fragments
        ]
        if unknown:
            raise KeyError(f"unknown fragment(s) {unknown}")
        # Out-of-band edits bypass the typed ops' epoch bumps, so the
        # resident-state invalidation happens here instead.
        for fragment_id in dict.fromkeys(fragment_ids):
            self.cluster.fragment(fragment_id).bump_epoch()
        batch = AppliedBatch(effects=(), dirty=tuple(dict.fromkeys(fragment_ids)))
        return self._refresh(batch)

    def _refresh(self, batch: AppliedBatch) -> MaintenanceRound:
        self._seq += 1
        run = Run(self.cluster, executor=self.executor)
        run.metrics.refresh_rounds += 1
        coordinator = self.cluster.coordinator_site

        # Structural updates retire fragments: forget their slices so
        # the per-segment equation systems match the live source tree.
        for fragment_id in batch.removed:
            for cached in self._triplets.values():
                cached.pop(fragment_id, None)

        # Resident executors (persistent process workers, networked
        # sites) hold fragment copies keyed by epoch.  Removed fragments
        # must be dropped outright; migrated ones will re-ship to their
        # new site's worker, so the old copy is garbage too.
        retired = tuple(batch.removed) + tuple(
            migration.fragment_id for migration in batch.migrations
        )
        if retired:
            self.executor.retire_fragments(tuple(dict.fromkeys(retired)))

        # Meter the batch's fragment migrations (rebalancing moves,
        # off-site splits, cross-site merges): the data genuinely
        # crosses the network, but no triplet changes -- cached slices
        # are placement-independent, so the standing answers stay valid
        # with no recomputation at all.
        migration_seconds = 0.0
        for migration in batch.migrations:
            migration_seconds += run.migrate(
                migration.origin, migration.target, migration.nbytes
            )

        dirty = [
            fragment_id
            for fragment_id in batch.dirty
            if fragment_id in self.cluster.fragmented_tree.fragments
        ]
        events: list[ChangeEvent] = []
        changed_names: list[str] = []
        slices_shipped = 0
        nodes_recomputed = 0
        resolved: list[Segment] = []

        if self._names and dirty:
            combined = self.index.combined()
            spans = self.index.spans()
            # Group dirty fragments by site: one job -- one visit, one
            # combined bottomUp pass per fragment -- per dirty site.
            by_site: dict[str, list[str]] = {}
            for fragment_id in dirty:
                by_site.setdefault(self.cluster.site_of(fragment_id), []).append(
                    fragment_id
                )
            jobs = []
            for site_id, fragment_ids in by_site.items():
                run.visit(site_id, dirty=True)
                jobs.append(
                    SiteJob(
                        site_id=site_id,
                        fragments=tuple(
                            self.cluster.fragment(fid) for fid in fragment_ids
                        ),
                        qlist=combined,
                        algebra=self.algebra,
                        label="refresh",
                        segments=spans,
                    )
                )
            parallel = run.parallel(jobs)

            dirty_segments: dict[SegmentKey, Segment] = {}
            site_finish: dict[str, float] = {}
            for site_id, outcome in parallel:
                shipped_bytes = 0
                for fragment_outcome in outcome.fragments:
                    run.add_ops(
                        fragment_outcome.nodes_visited, fragment_outcome.qlist_ops
                    )
                    for segment_index, ops_count in enumerate(
                        fragment_outcome.segment_ops
                    ):
                        run.add_segment_ops(segment_index, ops_count)
                    nodes_recomputed += fragment_outcome.nodes_visited
                    fragment_id = fragment_outcome.triplet.fragment_id
                    cached_slices = {
                        key: per_fragment[fragment_id]
                        for key, per_fragment in self._triplets.items()
                        if fragment_id in per_fragment
                    }
                    for segment, fresh in self.index.changed_segments(
                        cached_slices, fragment_outcome.triplet
                    ):
                        self._triplets[segment.key][fragment_id] = fresh
                        dirty_segments[segment.key] = segment
                        shipped_bytes += fresh.wire_bytes()
                        slices_shipped += 1
                # Ship only what changed; an unchanged dirty site still
                # acknowledges with a control-sized message.
                if shipped_bytes:
                    transfer = run.message(
                        site_id, coordinator, shipped_bytes, MSG_TRIPLET_DELTA
                    )
                else:
                    transfer = run.message(
                        site_id, coordinator, CONTROL_BYTES, MSG_CONTROL
                    )
                site_finish[site_id] = outcome.seconds + transfer

            old_answers = self.answers()
            (_, solve_seconds) = run.compute(
                coordinator,
                lambda: [
                    self._resolve_segment(segment)
                    for segment in dirty_segments.values()
                ],
            )
            resolved = list(dirty_segments.values())
            elapsed = run.join(site_finish) + solve_seconds
            for name in self._names:
                new_answer = self.answer(name)
                if new_answer != old_answers[name]:
                    changed_names.append(name)
                    event = ChangeEvent(
                        round_seq=self._seq,
                        name=name,
                        query=self._queries[name].source,
                        old_answer=old_answers[name],
                        new_answer=new_answer,
                    )
                    self.changefeed.append(event)
                    events.append(event)
        else:
            elapsed = 0.0

        run.finish(elapsed + migration_seconds)
        if obs_metrics._REGISTRY is not None:
            registry = obs_metrics._REGISTRY
            rounds = registry.counter(
                "stream_rounds_total", "Maintenance refresh rounds completed"
            )
            work = registry.counter(
                "stream_round_work_total",
                "Per-round maintenance work: dirty fragments, traffic bytes,"
                " nodes recomputed, answer flips",
                labelnames=("kind",),
            )
            rounds.inc()
            work.labels(kind="dirty_fragments").inc(len(dirty))
            work.labels(kind="traffic_bytes").inc(run.metrics.bytes_total)
            work.labels(kind="nodes_recomputed").inc(nodes_recomputed)
            work.labels(kind="flips").inc(len(changed_names))
        return MaintenanceRound(
            seq=self._seq,
            ops=tuple(effect.op.describe() for effect in batch.effects),
            dirty_fragments=tuple(dirty),
            sites_visited=tuple(run.metrics.visits),
            traffic_bytes=run.metrics.bytes_total,
            nodes_recomputed=nodes_recomputed,
            slices_shipped=slices_shipped,
            segments_resolved=len(resolved),
            changed=tuple(changed_names),
            events=tuple(events),
            structural=batch.structural,
            metrics=run.metrics,
            migrations=batch.migrations,
        )

    def _resolve_segment(self, segment: Segment) -> bool:
        answer = self._solve_segment(segment)
        self._segment_answers[segment.key] = answer
        return answer

    # ------------------------------------------------------------------
    # Per-segment evaluation / solving
    # ------------------------------------------------------------------
    def _evaluate_segment(self, segment: Segment) -> dict[str, VectorTriplet]:
        """Evaluate one segment over every fragment (initial broadcast).

        One :class:`SiteJob` per site carrying only the *segment's*
        QList -- the incremental-subscribe cost is ``O(|q_new| |T|)``
        site work and one segment-sized triplet per fragment, not a
        re-evaluation of the whole standing batch.
        """
        run = Run(self.cluster, executor=self.executor)
        source_tree = self.cluster.source_tree()
        placement = self.cluster.placement
        jobs = []
        for site_id in source_tree.sites():
            run.visit(site_id)
            # The placement's reverse index resolves a site's fragments
            # in O(card(F_Si)) -- SourceTree.fragments_of would rescan
            # the whole fragment tree once per site.
            fragment_ids = placement.fragments_of(site_id)
            jobs.append(
                SiteJob(
                    site_id=site_id,
                    fragments=tuple(
                        self.cluster.fragment(fid) for fid in fragment_ids
                    ),
                    qlist=segment.qlist,
                    algebra=self.algebra,
                    label="subscribe",
                )
            )
        triplets: dict[str, VectorTriplet] = {}
        for _, outcome in run.parallel(jobs):
            for fragment_outcome in outcome.fragments:
                run.add_ops(fragment_outcome.nodes_visited, fragment_outcome.qlist_ops)
                triplets[fragment_outcome.triplet.fragment_id] = (
                    fragment_outcome.triplet
                )
        run.finish(0.0)
        return triplets

    def _solve_segment(self, segment: Segment) -> bool:
        """Solve one segment's (small) equation system at the coordinator."""
        triplets = self._triplets[segment.key]
        system = build_equation_system(triplets)
        return system.value_of(
            answer_variable(self.cluster.source_tree(), index=segment.answer_index)
        )

    # ------------------------------------------------------------------
    # Oracles
    # ------------------------------------------------------------------
    def recompute_from_scratch(self) -> dict[str, bool]:
        """Re-evaluate and re-solve every segment; refresh all caches."""
        for segment in self.index.segments():
            self._triplets[segment.key] = self._evaluate_segment(segment)
            self._segment_answers[segment.key] = self._solve_segment(segment)
        return self.answers()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the executor pool the maintainer owns (if any)."""
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "StreamMaintainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamMaintainer {len(self)} standing "
            f"({self.index.segment_count} segments) rounds={self._seq}>"
        )


__all__ = [
    "StreamMaintainer",
    "MaintenanceRound",
    "Changefeed",
    "ChangeEvent",
]
