"""The dependency index: fragment updates -> affected query slices.

The combined QList of a standing batch decomposes into *segments*, one
per unique compiled query (:mod:`repro.core.plan`).  The planner's
offset-shifting guarantees that a segment's entries reference only
entries -- and only sub-fragment variables -- of the same segment, so
the combined Boolean equation system splits into independent per-segment
systems.  That independence is what makes maintenance cheap, and this
module is its bookkeeping:

* :class:`Segment` -- one unique compiled query, the subscription names
  riding on it, and its current offset in the combined QList;
* :class:`DirtyIndex` -- the live segment table.  ``subscribe`` /
  ``unsubscribe`` are *incremental*: a duplicate query joins an
  existing segment (no new combined entries, nothing to recompute), a
  fresh one appends a segment at the end (earlier segments keep their
  offsets), and removing a segment merely re-offsets its successors --
  per-segment caches are 0-based, so no cached triplet is invalidated;
* :meth:`DirtyIndex.changed_segments` -- given a dirty fragment's old
  per-segment triplets and its freshly recomputed combined triplet,
  the segments whose slice actually changed: exactly the query slices
  whose answers may move, and the only slices worth shipping.

Costs, in the units the ledger reports: ``subscribe``/``unsubscribe``
are O(1) segment-table work (plus one O(combined) concatenation,
amortized by caching); ``changed_segments`` is one slice comparison
per live segment, O(Σ|q_i|) per refreshed fragment.  No operation here
ever touches fragment *content* -- the index is pure bookkeeping over
compiled queries, which is why segment caches survive placement
changes untouched.

Checked by ``tests/test_stream_maintainer.py`` (incremental
subscribe/unsubscribe leave sibling segments' caches byte-identical;
only changed slices ship) and, end to end, by the ``stream``
experiment's flat-traffic shape check
(:func:`repro.bench.shape_checks.check_stream`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.core.plan import BatchPlan
from repro.core.vectors import VectorTriplet
from repro.xpath.qlist import QEntry, QList, append_shifted

#: A segment's identity: the canonical entry tuple of its compiled query.
SegmentKey = tuple[QEntry, ...]


@dataclass
class Segment:
    """One unique standing query and the subscriptions sharing it."""

    key: SegmentKey
    qlist: QList
    members: dict[str, None] = field(default_factory=dict)  # insertion-ordered set

    def __len__(self) -> int:
        return len(self.qlist)

    @property
    def answer_index(self) -> int:
        """Answer entry inside the segment's own (0-based) index space."""
        return self.qlist.answer_index


class DirtyIndex:
    """The live mapping subscriptions <-> segments <-> combined QList."""

    def __init__(self) -> None:
        self._segments: list[Segment] = []
        self._by_key: dict[SegmentKey, Segment] = {}
        self._segment_of: dict[str, Segment] = {}  # subscription name -> segment
        self._combined: Optional[QList] = None
        self._offsets: Optional[tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Registration (incremental)
    # ------------------------------------------------------------------
    def subscribe(self, name: str, qlist: QList) -> tuple[Segment, bool]:
        """Attach ``name`` to its query's segment; create it if fresh.

        Returns ``(segment, is_new)``.  Only a *new* segment extends
        the combined QList (appended at the end, so existing offsets --
        and therefore existing per-segment caches -- stay valid).
        """
        if name in self._segment_of:
            raise ValueError(f"subscription {name!r} already registered")
        key = qlist.entries
        segment = self._by_key.get(key)
        is_new = segment is None
        if segment is None:
            segment = Segment(key=key, qlist=qlist)
            self._segments.append(segment)
            self._by_key[key] = segment
            self._invalidate()
        segment.members[name] = None
        self._segment_of[name] = segment
        return segment, is_new

    def unsubscribe(self, name: str) -> tuple[Segment, bool]:
        """Detach ``name``; drop its segment when it was the last rider.

        Returns ``(segment, segment_removed)``.  Removing a middle
        segment re-offsets its successors in the combined QList, which
        is free: caches are keyed by segment and 0-based.
        """
        segment = self._segment_of.pop(name, None)
        if segment is None:
            raise ValueError(f"unknown subscription {name!r}")
        del segment.members[name]
        if segment.members:
            return segment, False
        self._segments.remove(segment)
        del self._by_key[segment.key]
        self._invalidate()
        return segment, True

    def _invalidate(self) -> None:
        self._combined = None
        self._offsets = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segment_of)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def segments(self) -> list[Segment]:
        """The live segments in combined-QList order."""
        return list(self._segments)

    def segment_of(self, name: str) -> Segment:
        return self._segment_of[name]

    def names(self) -> list[str]:
        """All subscription names, grouped by segment in segment order."""
        return [name for segment in self._segments for name in segment.members]

    def duplicate_count(self) -> int:
        """Subscriptions that ride another subscription's segment."""
        return len(self._segment_of) - len(self._segments)

    # ------------------------------------------------------------------
    # The combined view
    # ------------------------------------------------------------------
    def combined(self) -> QList:
        """The concatenated QList of every live segment (cached)."""
        if self._combined is None:
            entries: list[QEntry] = []
            offsets = []
            for segment in self._segments:
                offsets.append(append_shifted(entries, segment.qlist))
            self._combined = QList(
                entries,
                source=" + ".join(s.qlist.source or "?" for s in self._segments),
            )
            self._offsets = tuple(offsets)
        return self._combined

    def spans(self) -> tuple[tuple[int, int], ...]:
        """Per-segment ``(offset, length)`` inside the combined QList."""
        self.combined()
        assert self._offsets is not None
        return tuple(
            (offset, len(segment))
            for offset, segment in zip(self._offsets, self._segments)
        )

    def plan(self, order: list[str]) -> BatchPlan:
        """A :class:`BatchPlan` view over the current segment table.

        ``order`` fixes the per-query row order (the maintainer passes
        subscription order); the combined QList, spans and answer
        indices come from the live index, so the plan a fresh
        ``plan_batch`` would produce for the same queries evaluates
        identically even when the segment order differs.
        """
        combined = self.combined()
        spans = self.spans()
        segment_index = {id(segment): i for i, segment in enumerate(self._segments)}
        queries = []
        answer_indices = []
        segment_of = []
        for name in order:
            segment = self._segment_of[name]
            index = segment_index[id(segment)]
            queries.append(segment.qlist)
            answer_indices.append(spans[index][0] + segment.answer_index)
            segment_of.append(index)
        return BatchPlan(
            combined=combined,
            queries=tuple(queries),
            answer_indices=tuple(answer_indices),
            segments=spans,
            segment_of=tuple(segment_of),
        )

    # ------------------------------------------------------------------
    # Dirty resolution
    # ------------------------------------------------------------------
    def slices_of(self, combined_triplet: VectorTriplet) -> Iterator[tuple[Segment, VectorTriplet]]:
        """Split one fragment's combined triplet into per-segment slices.

        Each slice is re-based to the segment's own 0-based index
        space, so it compares equal to (and can replace) the triplet a
        standalone evaluation of that segment would produce.
        """
        for (offset, length), segment in zip(self.spans(), self._segments):
            yield segment, combined_triplet.sliced(offset, length)

    def changed_segments(
        self,
        cached: Mapping[SegmentKey, VectorTriplet],
        combined_triplet: VectorTriplet,
    ) -> list[tuple[Segment, VectorTriplet]]:
        """The slices of ``combined_triplet`` that differ from ``cached``.

        ``cached`` maps segment key -> the fragment's previous 0-based
        slice (absent for a fragment new to the decomposition: then
        every slice counts as changed).  Only these slices need to
        cross the network, and only their segments need re-solving.
        """
        changed = []
        for segment, fresh in self.slices_of(combined_triplet):
            if cached.get(segment.key) != fresh:
                changed.append((segment, fresh))
        return changed


__all__ = ["Segment", "SegmentKey", "DirtyIndex"]
