"""Continuous-query maintenance over fragment update streams (Section 5 at scale).

The ``stream`` layer keeps a standing batch of Boolean XPath queries
live while the distributed document changes underneath it:

* :mod:`repro.stream.updates` -- the typed update log (``insNode``,
  ``delNode``, ``relabel``, ``splitFragments``, ``mergeFragments``)
  with in-order batch application to a cluster;
* :mod:`repro.stream.dirty` -- the dependency index mapping dirty
  fragments to the affected query slices of the combined QList,
  maintained incrementally as queries subscribe/unsubscribe;
* :mod:`repro.stream.maintainer` -- the
  :class:`~repro.stream.maintainer.StreamMaintainer` runtime: cached
  per-segment triplets, dirty-site-only ``bottomUp`` refresh through
  the site executors, changed-slice-only shipping, per-segment
  re-solving and a :class:`~repro.stream.maintainer.Changefeed` of
  answer flips.

Per update batch the cost is ``O(Σ|q_i| · Σ card(F_dirty))`` site work
and traffic proportional to the slices that actually changed --
independent of the document size, which is the paper's Section 5 bound
extended from one materialized view to thousands of standing queries.
"""

from repro.stream.dirty import DirtyIndex, Segment
from repro.stream.maintainer import (
    Changefeed,
    ChangeEvent,
    MaintenanceRound,
    StreamMaintainer,
)
from repro.stream.updates import (
    AppliedBatch,
    DelNode,
    InsNode,
    MergeFragment,
    Migration,
    MoveFragment,
    Relabel,
    SplitFragment,
    UpdateError,
    UpdateOp,
    apply_updates,
)

__all__ = [
    "StreamMaintainer",
    "MaintenanceRound",
    "Changefeed",
    "ChangeEvent",
    "DirtyIndex",
    "Segment",
    "UpdateOp",
    "InsNode",
    "DelNode",
    "Relabel",
    "SplitFragment",
    "MergeFragment",
    "MoveFragment",
    "Migration",
    "AppliedBatch",
    "apply_updates",
    "UpdateError",
]
