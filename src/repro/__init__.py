"""repro -- ParBoX: partial evaluation for distributed Boolean XPath.

A full reproduction of *Buneman, Cong, Fan, Kementsietsidis: "Using
Partial Evaluation in Distributed Query Evaluation", VLDB 2006*.

Quickstart::

    from repro import compile_query, Cluster, ParBoXEngine
    from repro.fragments import fragment_balanced
    from repro.xmltree import parse_xml

    tree = parse_xml(open("doc.xml").read())
    decomposition = fragment_balanced(tree, target_fragments=4)
    cluster = Cluster.one_site_per_fragment(decomposition)
    query = compile_query('[//stock[code = "GOOG" and sell = "376"]]')
    result = ParBoXEngine(cluster).evaluate(query)
    print(result.answer, result.metrics.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.xpath import compile_query, parse_query, QList
from repro.distsim import Cluster, NetworkModel
from repro.distsim.metrics import EvalResult, Metrics
from repro.core import (
    ParBoXEngine,
    HybridParBoXEngine,
    FullDistParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    evaluate_tree,
    ALL_ENGINES,
)

__version__ = "1.0.0"

__all__ = [
    "compile_query",
    "parse_query",
    "QList",
    "Cluster",
    "NetworkModel",
    "EvalResult",
    "Metrics",
    "ParBoXEngine",
    "HybridParBoXEngine",
    "FullDistParBoXEngine",
    "LazyParBoXEngine",
    "NaiveCentralizedEngine",
    "NaiveDistributedEngine",
    "evaluate_tree",
    "ALL_ENGINES",
    "__version__",
]
