"""repro -- ParBoX: partial evaluation for distributed Boolean XPath.

A full reproduction of *Buneman, Cong, Fan, Kementsietsidis: "Using
Partial Evaluation in Distributed Query Evaluation", VLDB 2006*.

Quickstart::

    from repro import compile_query, Cluster, ParBoXEngine
    from repro.fragments import fragment_balanced
    from repro.xmltree import parse_xml

    tree = parse_xml(open("doc.xml").read())
    decomposition = fragment_balanced(tree, target_fragments=4)
    cluster = Cluster.one_site_per_fragment(decomposition)
    query = compile_query('[//stock[code = "GOOG" and sell = "376"]]')
    result = ParBoXEngine(cluster).evaluate(query)
    print(result.answer, result.metrics.summary())

Many queries at once (one set of site visits per batch)::

    from repro import QuerySession
    with QuerySession(cluster, engine="parbox", batch_size=16) as session:
        outcome = session.evaluate_many(['[//stock]', '[//bidder]', ...])
        print(outcome.answers, outcome.bytes_per_query)

Keep queries live under updates (only dirty sites recompute)::

    from repro.stream import InsNode
    with QuerySession(cluster) as session:
        watch = session.watch(['[//stock]', '[//bidder]'])
        watch.apply([InsNode("F2", parent.node_id, "bidder")])
        for event in watch.changefeed.drain():
            print(event.name, event.old_answer, "->", event.new_answer)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.xpath import compile_query, parse_query, QList
from repro.distsim import Cluster, NetworkModel
from repro.distsim.metrics import BatchResult, EvalResult, Metrics, QueryCost
from repro.core import (
    ParBoXEngine,
    HybridParBoXEngine,
    FullDistParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    QuerySession,
    SessionOutcome,
    BatchPlan,
    QueryCache,
    plan_batch,
    evaluate_tree,
    ALL_ENGINES,
)
from repro.stream import StreamMaintainer, Changefeed, ChangeEvent
from repro.placement import (
    Workload,
    Constraints,
    RebalancePlan,
    RebalanceOutcome,
    optimize_placement,
    balanced_random_placement,
    enact_plan,
)

__version__ = "1.2.0"

__all__ = [
    "compile_query",
    "parse_query",
    "QList",
    "Cluster",
    "NetworkModel",
    "EvalResult",
    "BatchResult",
    "QueryCost",
    "Metrics",
    "QuerySession",
    "SessionOutcome",
    "BatchPlan",
    "QueryCache",
    "plan_batch",
    "ParBoXEngine",
    "HybridParBoXEngine",
    "FullDistParBoXEngine",
    "LazyParBoXEngine",
    "NaiveCentralizedEngine",
    "NaiveDistributedEngine",
    "evaluate_tree",
    "ALL_ENGINES",
    "StreamMaintainer",
    "Changefeed",
    "ChangeEvent",
    "Workload",
    "Constraints",
    "RebalancePlan",
    "RebalanceOutcome",
    "optimize_placement",
    "balanced_random_placement",
    "enact_plan",
    "__version__",
]
