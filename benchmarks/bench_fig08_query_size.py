"""Figure 8: ParBoX scalability in query size (Experiment 1).

Same FT1 sweep with |QList| in {2, 8, 15, 23}.  Expected shape: runtime
ordered by query size (roughly linear in |QList|), parallel gains
consistent across sizes.
"""

from repro.bench.experiments import fig8_query_size
from conftest import regenerate_and_check


def test_fig08_series(benchmark, config):
    regenerate_and_check(benchmark, fig8_query_size, "fig8", config)
