"""Whole-system load surface: the factorial run table as a CI gate.

Wraps :mod:`repro.loadgen` the way ``bench_serving.py`` wraps the
serving tax: execute the declared run table (open-loop client against a
real ``ServingCluster`` gateway per run), write per-run raw artifacts
plus the aggregate ``run_table.csv``, merge this scale's baseline entry
into the committed trajectory file, and fail on a regression against
the committed entry.

Standalone (the CI regression gate)::

    python benchmarks/bench_loadtest.py --quick --out loadtest-artifacts \
        --json BENCH_loadtest.json --baseline BENCH_loadtest.json

``--json`` merge-writes this scale's entry (per-run throughput / p95 /
shed rate / deterministic bytes-on-wire plus scale aggregates) into the
trajectory file; ``--baseline`` reads the committed file *before* the
rewrite and fails the run when the gate trips (exact run-id and
bytes-on-wire match; generous wall-clock tolerances -- see
``repro/loadgen/analyze.py``).  ``--check-format`` only validates a
committed baseline's schema and exits, so CI can reject a hand-mangled
``BENCH_loadtest.json`` before spending any load-test time.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.loadgen import (  # noqa: E402 - after the src path insert
    build_baseline_entry,
    check_baseline_format,
    execute_table,
    factor_deltas,
    gate_against_baseline,
    render_deltas,
    table_for_scale,
)


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true", help="the CI-budget run table")
    parser.add_argument(
        "--out",
        metavar="DIR",
        default="loadtest-artifacts",
        help="per-run artifact directory (default: loadtest-artifacts)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="merge-write the baseline entry per scale"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="committed trajectory to gate regressions against",
    )
    parser.add_argument(
        "--check-format",
        metavar="PATH",
        default=None,
        help="only validate a baseline file's schema, then exit",
    )
    args = parser.parse_args(argv)

    if args.check_format:
        path = Path(args.check_format)
        if not path.exists():
            print(f"FAIL: {path} does not exist", file=sys.stderr)
            return 1
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            print(f"FAIL: {path} is not valid JSON: {error}", file=sys.stderr)
            return 1
        problems = check_baseline_format(doc)
        for problem in problems:
            print(f"FAIL: {path}: {problem}", file=sys.stderr)
        if not problems:
            print(f"{path}: format ok ({', '.join(sorted(doc))} scale(s))")
        return 1 if problems else 0

    scale = "quick" if args.quick else "default"
    # Read the committed baseline *before* --json rewrites the file.
    baseline_entry = None
    if args.baseline and Path(args.baseline).exists():
        baseline_doc = json.loads(Path(args.baseline).read_text())
        problems = check_baseline_format(baseline_doc)
        if problems:
            for problem in problems:
                print(f"FAIL: baseline {args.baseline}: {problem}", file=sys.stderr)
            return 1
        baseline_entry = baseline_doc.get(scale)

    table = table_for_scale(scale)
    print(table.describe())
    rows = execute_table(table, Path(args.out), progress=print)
    print(f"\nartifacts: {args.out}/ (aggregate: {args.out}/run_table.csv)")
    print(render_deltas(factor_deltas(rows)))

    entry = build_baseline_entry(rows, scale)
    if args.json:
        path = Path(args.json)
        trajectory = json.loads(path.read_text()) if path.exists() else {}
        trajectory[scale] = entry
        path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    if baseline_entry is None:
        if args.baseline:
            print(f"(no committed {scale!r} entry in {args.baseline}; gate skipped)")
        return 0
    failures = gate_against_baseline(rows, baseline_entry)
    verdict = "PASS" if not failures else "FAIL"
    print(
        f"  [{verdict}] vs committed baseline: mean "
        f"{entry['throughput_rps']} req/s, p95 {entry['p95_ms']}ms, "
        f"shed {entry['shed_rate']} "
        f"(baseline: {baseline_entry['throughput_rps']} req/s, "
        f"p95 {baseline_entry['p95_ms']}ms)"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
