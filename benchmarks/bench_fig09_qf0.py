"""Figure 9: qF0 on the FT2 chain (Experiment 2).

Query satisfied at the root fragment: ParBoX, FullDistParBoX and
LazyParBoX coincide in elapsed time; Lazy evaluates only the
coordinator and depth 1 ("only 2 machines evaluate qF0"), saving total
computation.
"""

from repro.bench.experiments import fig9_qf0
from conftest import regenerate_and_check


def test_fig09_series(benchmark, config):
    regenerate_and_check(benchmark, fig9_qf0, "fig9", config)
