"""Section 4 (added experiment): the Hybrid ParBoX crossover.

Sweeps fragmentation granularity of one document up to the pathological
one-fragment-per-node decomposition.  Expected shape: ParBoX's traffic
wins while card(F) < |T|/|q|, NaiveCentralized wins beyond, and Hybrid
switches strategies to track the minimum.
"""

from repro.bench.experiments import sec4_hybrid_crossover
from conftest import regenerate_and_check


def test_sec4_hybrid_crossover(benchmark, config):
    regenerate_and_check(benchmark, sec4_hybrid_crossover, "sec4-hybrid", config)
