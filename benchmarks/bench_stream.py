"""Continuous-query maintenance: per-update cost vs re-evaluation.

Regenerates the ``stream`` experiment (per-update traffic flat in |T|,
proportional to dirty-fragment count, dirty sites only) and
micro-benchmarks one incremental ``StreamMaintainer.apply`` round
against the from-scratch batch evaluation it replaces, so a regression
in the dirty index or the changed-slice shipping shows up as lost
locality.
"""

import pytest

from conftest import regenerate_and_check

from repro.bench.experiments import stream_maintenance
from repro.core import ParBoXEngine, QuerySession
from repro.stream import Relabel, StreamMaintainer
from repro.workloads.pubsub import subscription_texts
from repro.workloads.topologies import star_ft1


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        star_ft1(6, config.total_mb / 2, seed=7, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def maintainer(cluster):
    maintainer = StreamMaintainer(cluster)
    for index, text in enumerate(subscription_texts(16, seed=7)):
        maintainer.subscribe(f"sub-{index}", text)
    maintainer.subscribe("probe", '[//seal = "seal-F2-flip"]')
    yield maintainer
    maintainer.close()


def _toggle_op(cluster, state={"hot": False}):
    seal = cluster.fragment("F2").root.find_first(lambda n: n.label == "seal")
    state["hot"] = not state["hot"]
    text = "seal-F2-flip" if state["hot"] else "seal-F2"
    return Relabel("F2", seal.node_id, text=text)


def test_incremental_round(benchmark, cluster, maintainer):
    round_ = benchmark(lambda: maintainer.apply([_toggle_op(cluster)]))
    # Only the dirty fragment's site participates, whatever |T| is.
    assert round_.sites_visited == (cluster.site_of("F2"),)
    assert round_.dirty_fragments == ("F2",)


def test_scratch_reevaluation(benchmark, cluster, maintainer):
    engine = ParBoXEngine(cluster)
    plan = maintainer.plan()
    result = benchmark(lambda: engine.evaluate_many(plan))
    assert len(result.answers) == len(maintainer)


def test_incremental_traffic_beats_scratch(cluster, maintainer):
    round_ = maintainer.apply([_toggle_op(cluster)])
    scratch = ParBoXEngine(cluster).evaluate_many(maintainer.plan())
    assert round_.traffic_bytes < scratch.metrics.bytes_total
    assert tuple(maintainer.answers().values()) == scratch.answers


def test_watch_api_round_trip(cluster):
    with QuerySession(cluster, engine="parbox") as session:
        handle = session.watch(["[//bidder]", "[//bidder]", "[//seal]"])
        assert len(handle) == 3 and handle.duplicate_subscriptions() == 1
        handle.close()


def test_fig_stream(benchmark, config):
    regenerate_and_check(benchmark, stream_maintenance, "stream", config)
