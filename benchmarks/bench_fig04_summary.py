"""Figure 4 (measured): the algorithm summary table.

The paper's Fig. 4 is analytic; this benchmark measures its patterns on
a fixed workload (FT2 chain, two sites holding two fragments each):
per-site visit counts, total computation (node x |QList| ops) and
communication bytes per algorithm.
"""

from repro.bench.experiments import fig4_validation
from conftest import regenerate_and_check


def test_fig04_table(benchmark, config):
    regenerate_and_check(benchmark, fig4_validation, "fig4", config)
