"""Figure 11: qF(n/2) on the FT2 chain (Experiment 2).

Query satisfied mid-chain: LazyParBoX oscillates/converges to a small
multiple of ParBoX's elapsed time while saving a large share of the
total computation -- the paper's "trade evaluation time for reduced
site load".
"""

from repro.bench.experiments import fig11_qfmid
from conftest import regenerate_and_check


def test_fig11_series(benchmark, config):
    regenerate_and_check(benchmark, fig11_qfmid, "fig11", config)
