"""Hot-path microbenchmark: the partial-evaluation inner loop, kernel vs kernel.

Measures exactly the work the paper's complexity claims are about --
one ``bottomUp`` pass over a ground fragment, ``O(|F| * |qL|)`` entry
operations -- with the classic formula-algebra kernel against the
bitset ground-path kernel, across the paper's query sizes
``|QList| in {2, 8, 15, 23}``.  Both kernels must return
bitwise-identical triplets (asserted per measurement); what differs is
the wall clock.  Two supporting measurements ride along:

* **end-to-end**: one ParBoX batch evaluation of all four queries on
  the FT1 star (site work dominated by ground fragments), formula vs
  auto kernel;
* **compact wire**: pickled size of the process executor's triplet
  reply in the old ``to_obj`` form vs the compact
  bitmask-plus-residue-table codec;
* **dispatch tax**: the 16-site star through the process executor,
  legacy per-batch fragment shipping vs resident workers (fragments
  pushed once per epoch, batches ship only programs and triplets).
  Resident workers are measured twice -- with per-job framed writes
  and with batched pipe submission (all jobs bound for a worker
  coalesced into one frame, the default) -- so the baseline tracks
  the batching win separately.

Usage::

    python benchmarks/bench_hotpath.py                 # default scale
    python benchmarks/bench_hotpath.py --quick
    python benchmarks/bench_hotpath.py --json BENCH_hotpath.json \
        --baseline BENCH_hotpath.json                  # CI regression gate

``--json`` merge-writes this scale's results into the trajectory file
(one entry per scale).  ``--baseline`` reads the *committed* trajectory
before writing and exits non-zero when the measured median speedup
regressed more than 20% against the same-scale baseline entry.  The
absolute floor -- median speedup >= 3x at default scale (>= 2x at the
miniature quick scale) -- is always enforced: it is the acceptance
criterion that justifies the kernel's existence.
"""

from __future__ import annotations

import argparse
import json
import pickle
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ParBoXEngine, bottom_up  # noqa: E402
from repro.core.session import QuerySession  # noqa: E402
from repro.distsim.executors import ProcessSiteExecutor  # noqa: E402
from repro.fragments import Fragment  # noqa: E402
from repro.workloads.queries import QUERY_SIZES, query_of_size  # noqa: E402
from repro.workloads.topologies import star_ft1  # noqa: E402
from repro.workloads.xmark import generate_xmark_site  # noqa: E402

#: Required median speedup per scale (the PR's acceptance criterion at
#: "default"; quick fragments are smaller, fixed overheads weigh more).
SPEEDUP_FLOOR = {"default": 3.0, "quick": 2.0}
#: Required steady-state speedup of the resident process executor over
#: legacy per-batch dispatch on the 16-site star (both scales).
DISPATCH_FLOOR = 2.0
#: Required steady-state speedup of batched pipe submission over
#: per-job framed writes (same resident workers).  Measured locally at
#: 1.15-1.25x end to end on the single-core CI box -- the floor sits
#: below that so wall-clock noise cannot trip it; the committed
#: baseline's regression gate (20% tolerance) does the tight tracking.
BATCH_FLOOR = 1.05
#: Allowed regression against the committed baseline (20%).
REGRESSION_TOLERANCE = 0.8


def _scale_params(quick: bool) -> dict:
    """Mirror of BenchConfig.default()/.quick() for one site's fragment."""
    if quick:
        # Tiny fragments make single runs noisy; a wide median keeps
        # the CI regression gate off the noise floor.
        return {"scale": "quick", "site_mb": 10.0 / 4, "nodes_per_mb": 24, "repeats": 31}
    return {"scale": "default", "site_mb": 50.0 / 4, "nodes_per_mb": 160, "repeats": 11}


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def run_hotpath(quick: bool = False, seed: int = 2006) -> dict:
    """Run all measurements; returns the JSON-able result document."""
    params = _scale_params(quick)
    repeats = params["repeats"]
    tree = generate_xmark_site(
        params["site_mb"], seed=seed, nodes_per_mb=params["nodes_per_mb"]
    )
    fragment = Fragment("F0", tree.root)

    rows = []
    for size in QUERY_SIZES:
        qlist = query_of_size(size)
        formula_triplet, _ = bottom_up(fragment, qlist, kernel="formula")
        bitset_triplet, _ = bottom_up(fragment, qlist, kernel="auto")
        assert formula_triplet == bitset_triplet, (
            f"kernel disagreement at |QList|={size}"
        )
        formula_s = _median_seconds(
            lambda: bottom_up(fragment, qlist, kernel="formula"), repeats
        )
        bitset_s = _median_seconds(
            lambda: bottom_up(fragment, qlist, kernel="auto"), repeats
        )
        rows.append(
            {
                "qlist": size,
                "formula_ms": round(formula_s * 1000, 4),
                "bitset_ms": round(bitset_s * 1000, 4),
                "speedup": round(formula_s / bitset_s, 2),
            }
        )

    # End-to-end: one ParBoX batch of all four queries on the FT1 star.
    # (import_module, not attribute access: the package re-exports the
    # bottom_up *function* under the same name as the module.)
    import importlib

    bu = importlib.import_module("repro.core.bottom_up")

    cluster = star_ft1(
        4, params["site_mb"] * 4, seed=seed, nodes_per_mb=params["nodes_per_mb"]
    )
    texts = [query_of_size(size) for size in QUERY_SIZES]

    def evaluate_batch() -> tuple:
        with QuerySession(cluster, engine="parbox") as session:
            return session.evaluate_many(texts).answers

    saved_kernel = bu.DEFAULT_KERNEL
    try:
        bu.DEFAULT_KERNEL = "formula"
        e2e_answers_formula = evaluate_batch()
        e2e_formula_s = _median_seconds(evaluate_batch, max(3, repeats // 3))
        bu.DEFAULT_KERNEL = "auto"
        e2e_answers_auto = evaluate_batch()
        e2e_auto_s = _median_seconds(evaluate_batch, max(3, repeats // 3))
    finally:
        bu.DEFAULT_KERNEL = saved_kernel
    assert e2e_answers_formula == e2e_answers_auto

    # Compact wire codec: the process executor's reply payload.
    qlist = query_of_size(QUERY_SIZES[-1])
    triplet, _ = bottom_up(fragment, qlist)
    obj_bytes = len(pickle.dumps(triplet.to_obj()))
    compact_bytes = len(pickle.dumps(triplet.to_compact()))

    dispatch = run_dispatch(quick=quick, seed=seed)

    speedups = [row["speedup"] for row in rows]
    return {
        "scale": params["scale"],
        "fragment_nodes": fragment.size(),
        "repeats": repeats,
        "rows": rows,
        "median_speedup": round(statistics.median(speedups), 2),
        "min_speedup": min(speedups),
        "e2e": {
            "formula_ms": round(e2e_formula_s * 1000, 2),
            "auto_ms": round(e2e_auto_s * 1000, 2),
            "speedup": round(e2e_formula_s / e2e_auto_s, 2),
        },
        "compact_wire": {
            "to_obj_pickle_bytes": obj_bytes,
            "compact_pickle_bytes": compact_bytes,
            "ratio": round(obj_bytes / compact_bytes, 2),
        },
        "dispatch": dispatch,
    }


def run_dispatch(quick: bool = False, seed: int = 2006) -> dict:
    """Dispatch tax on the 16-site star: resident vs per-batch workers.

    The legacy process executor re-pickled every fragment's XML into
    the pool on every batch; resident workers receive each fragment
    once per epoch and afterwards a batch ships only the compiled
    query program and triplet replies (protocol-5 out-of-band
    buffers).  ``cold`` includes worker spawn plus the one-time
    fragment push; ``steady`` is the per-batch median after that --
    the number the dispatch-tax claim is about.
    """
    params = _scale_params(quick)
    total_mb = 4.0 if quick else 16.0
    repeats = max(3, params["repeats"] // 5)
    cluster = star_ft1(16, total_mb, seed=seed, nodes_per_mb=params["nodes_per_mb"])
    qlists = [query_of_size(size) for size in QUERY_SIZES]

    def measure(resident: bool, batch_submission: bool = True) -> tuple:
        with ProcessSiteExecutor(
            resident=resident, batch_submission=batch_submission
        ) as executor:
            engine = ParBoXEngine(cluster, executor=executor)

            def batch() -> tuple:
                return tuple(engine.evaluate(qlist).answer for qlist in qlists)

            started = time.perf_counter()
            answers = batch()
            cold_s = time.perf_counter() - started
            steady_s = _median_seconds(batch, repeats)
        return answers, cold_s, steady_s

    legacy_answers, legacy_cold, legacy_steady = measure(resident=False)
    resident_answers, resident_cold, resident_steady = measure(resident=True)

    # Per-job writes vs batched submission is a closer race than legacy
    # vs resident, so the two executors are timed *interleaved* (one
    # batch each, alternating) -- slow machine-wide drift then hits both
    # sides equally instead of biasing whichever ran second.
    unbatched_times: list = []
    batched_times: list = []
    with ProcessSiteExecutor(
        resident=True, batch_submission=False
    ) as unbatched_executor, ProcessSiteExecutor(resident=True) as batched_executor:
        unbatched_engine = ParBoXEngine(cluster, executor=unbatched_executor)
        batched_engine = ParBoXEngine(cluster, executor=batched_executor)

        def batch(engine: ParBoXEngine) -> tuple:
            return tuple(engine.evaluate(qlist).answer for qlist in qlists)

        started = time.perf_counter()
        unbatched_answers = batch(unbatched_engine)
        unbatched_cold = time.perf_counter() - started
        batch(batched_engine)  # warm the batched side too
        for _ in range(2 * repeats):
            started = time.perf_counter()
            batch(unbatched_engine)
            unbatched_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            batch(batched_engine)
            batched_times.append(time.perf_counter() - started)
    unbatched_steady = statistics.median(unbatched_times)
    batched_steady = statistics.median(batched_times)

    assert legacy_answers == resident_answers == unbatched_answers, (
        "dispatch modes disagree"
    )
    return {
        "sites": 16,
        "total_mb": total_mb,
        "batch_queries": len(qlists),
        "repeats": repeats,
        "legacy_cold_ms": round(legacy_cold * 1000, 2),
        "legacy_steady_ms": round(legacy_steady * 1000, 2),
        "unbatched_cold_ms": round(unbatched_cold * 1000, 2),
        "unbatched_steady_ms": round(unbatched_steady * 1000, 2),
        "batched_steady_ms": round(batched_steady * 1000, 2),
        "resident_cold_ms": round(resident_cold * 1000, 2),
        "resident_steady_ms": round(resident_steady * 1000, 2),
        "steady_speedup": round(legacy_steady / resident_steady, 2),
        "batch_speedup": round(unbatched_steady / batched_steady, 2),
    }


def render(result: dict) -> str:
    lines = [
        f"hotpath @ {result['scale']} scale "
        f"(ground fragment, {result['fragment_nodes']} nodes, "
        f"median of {result['repeats']} runs)",
        f"  {'|QList|':>8} {'formula':>10} {'bitset':>10} {'speedup':>8}",
    ]
    for row in result["rows"]:
        lines.append(
            f"  {row['qlist']:>8} {row['formula_ms']:>8.2f}ms "
            f"{row['bitset_ms']:>8.3f}ms {row['speedup']:>7.2f}x"
        )
    lines.append(f"  median ground-bottomUp speedup: {result['median_speedup']}x")
    e2e = result["e2e"]
    lines.append(
        f"  end-to-end ParBoX batch: {e2e['formula_ms']}ms -> {e2e['auto_ms']}ms "
        f"({e2e['speedup']}x)"
    )
    wire = result["compact_wire"]
    lines.append(
        f"  reply payload (pickled): {wire['to_obj_pickle_bytes']}B to_obj -> "
        f"{wire['compact_pickle_bytes']}B compact ({wire['ratio']}x smaller)"
    )
    dispatch = result.get("dispatch")
    if dispatch:
        lines.append(
            f"  dispatch tax, {dispatch['sites']}-site star "
            f"({dispatch['total_mb']}MB, batch of {dispatch['batch_queries']}):"
        )
        lines.append(
            f"    per-batch workers: cold {dispatch['legacy_cold_ms']}ms, "
            f"steady {dispatch['legacy_steady_ms']}ms"
        )
        if "unbatched_steady_ms" in dispatch:
            lines.append(
                f"    resident A/B (interleaved): per-job writes "
                f"{dispatch['unbatched_steady_ms']}ms -> batched "
                f"{dispatch['batched_steady_ms']}ms"
            )
        lines.append(
            f"    resident workers:  cold {dispatch['resident_cold_ms']}ms, "
            f"steady {dispatch['resident_steady_ms']}ms"
        )
        lines.append(
            f"    steady-state speedup: {dispatch['steady_speedup']}x"
        )
        if "batch_speedup" in dispatch:
            lines.append(
                f"    batched-submission speedup over per-job writes: "
                f"{dispatch['batch_speedup']}x"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true", help="miniature scale")
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="merge-write results per scale"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="committed trajectory to gate regressions against (>20%% fails)",
    )
    args = parser.parse_args(argv)

    baseline: dict = {}
    if args.baseline and Path(args.baseline).exists():
        baseline = json.loads(Path(args.baseline).read_text())

    result = run_hotpath(quick=args.quick)
    print(render(result))

    if args.json:
        path = Path(args.json)
        trajectory = (
            json.loads(path.read_text()) if path.exists() else {}
        )
        trajectory[result["scale"]] = result
        path.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"wrote {args.json}")

    failures = []
    floor = SPEEDUP_FLOOR[result["scale"]]
    if result["median_speedup"] < floor:
        failures.append(
            f"median speedup {result['median_speedup']}x below the {floor}x floor"
        )
    dispatch_speedup = result["dispatch"]["steady_speedup"]
    if dispatch_speedup < DISPATCH_FLOOR:
        failures.append(
            f"resident dispatch speedup {dispatch_speedup}x below the "
            f"{DISPATCH_FLOOR}x floor"
        )
    batch_speedup = result["dispatch"]["batch_speedup"]
    if batch_speedup < BATCH_FLOOR:
        failures.append(
            f"batched-submission speedup {batch_speedup}x below the "
            f"{BATCH_FLOOR}x floor"
        )
    reference = baseline.get(result["scale"])
    if reference:
        threshold = reference["median_speedup"] * REGRESSION_TOLERANCE
        verdict = "PASS" if result["median_speedup"] >= threshold else "FAIL"
        print(
            f"  [{verdict}] vs committed baseline: {result['median_speedup']}x "
            f">= {threshold:.2f}x (= {reference['median_speedup']}x - 20%)"
        )
        if verdict == "FAIL":
            failures.append(
                f"speedup regressed >20% vs baseline ({reference['median_speedup']}x)"
            )
        dispatch_reference = reference.get("dispatch")
        if dispatch_reference:
            dispatch_threshold = (
                dispatch_reference["steady_speedup"] * REGRESSION_TOLERANCE
            )
            dispatch_verdict = (
                "PASS" if dispatch_speedup >= dispatch_threshold else "FAIL"
            )
            print(
                f"  [{dispatch_verdict}] dispatch vs committed baseline: "
                f"{dispatch_speedup}x >= {dispatch_threshold:.2f}x "
                f"(= {dispatch_reference['steady_speedup']}x - 20%)"
            )
            if dispatch_verdict == "FAIL":
                failures.append(
                    "dispatch speedup regressed >20% vs baseline "
                    f"({dispatch_reference['steady_speedup']}x)"
                )
            batch_reference = dispatch_reference.get("batch_speedup")
            if batch_reference:
                batch_threshold = batch_reference * REGRESSION_TOLERANCE
                batch_verdict = (
                    "PASS" if batch_speedup >= batch_threshold else "FAIL"
                )
                print(
                    f"  [{batch_verdict}] batched submission vs committed baseline: "
                    f"{batch_speedup}x >= {batch_threshold:.2f}x "
                    f"(= {batch_reference}x - 20%)"
                )
                if batch_verdict == "FAIL":
                    failures.append(
                        "batched-submission speedup regressed >20% vs baseline "
                        f"({batch_reference}x)"
                    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
