"""Ablation (DESIGN.md Section 5): formula canonicalization.

With virtual nodes buried deep inside fragments, the literal ``compFm``
of Fig. 3(b) duplicates sub-formulas at every ancestor level while the
canonicalizing constructors keep each vector entry at O(card(F_j))
variables -- this benchmark measures the resulting traffic gap.
"""

from repro.bench.experiments import ablation_algebra
from conftest import regenerate_and_check


def test_ablation_algebra(benchmark, config):
    regenerate_and_check(benchmark, ablation_algebra, "ablation-algebra", config)
