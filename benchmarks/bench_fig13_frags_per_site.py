"""Figure 13: fragments-per-site invariance (Experiment 4).

One site, constant cumulative data split into 1..10 fragments.
Expected shape: flat evaluation time -- ParBoX depends on the cumulative
size assigned to a site, not on its fragment count -- with a single
visit throughout.
"""

from repro.bench.experiments import fig13_frags_per_site
from conftest import regenerate_and_check


def test_fig13_series(benchmark, config):
    regenerate_and_check(benchmark, fig13_frags_per_site, "fig13", config)
