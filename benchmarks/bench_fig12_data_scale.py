"""Figure 12: scalability in data size (Experiment 3).

FT3 bushy topology with the paper's per-fragment growth ratios, total
data sweeping 45 -> 160 scaled MB, |QList| in {2, 8, 15, 23}.
Expected shape: runtime linear in data size for every query size.
"""

from repro.bench.experiments import fig12_data_scale
from conftest import regenerate_and_check


def test_fig12_series(benchmark, config):
    regenerate_and_check(benchmark, fig12_data_scale, "fig12", config)
