"""Figure 7: ParBoX vs NaiveCentralized (Experiment 1).

FT1 star, constant cumulative data, 1..10 machines, |QList| = 8.
Expected shape: ParBoX strictly below NaiveCentralized from 2 machines
on and decreasing with parallelism; NaiveCentralized dominated by data
shipping, which flattens as per-fragment increments shrink.
"""

from repro.bench.experiments import fig7_parbox_vs_central
from conftest import regenerate_and_check


def test_fig07_series(benchmark, config):
    regenerate_and_check(benchmark, fig7_parbox_vs_central, "fig7", config)
