"""Micro-benchmarks: per-query cost of each site-execution strategy.

Measures one ParBoX evaluation per executor on the FT1 star (one
fragment per site, so the fan-out matches the worker count), plus the
regeneration of the ``executors`` comparison experiment.  The serial
strategy is the baseline; threads add pool dispatch overhead but
overlap site work where the interpreter allows; processes pay wire
serialization per batch in exchange for GIL-free evaluation.
"""

import pytest

from conftest import regenerate_and_check

from repro.bench.experiments import executors_realtime
from repro.core import ParBoXEngine
from repro.distsim.executors import EXECUTOR_REGISTRY, resolve_executor
from repro.workloads.queries import query_of_size
from repro.workloads.topologies import star_ft1


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        star_ft1(6, config.total_mb / 2, seed=99, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def qlist():
    return query_of_size(8)


@pytest.mark.parametrize("executor_name", sorted(EXECUTOR_REGISTRY))
def test_engine_parbox_executor(benchmark, cluster, qlist, executor_name):
    with resolve_executor(executor_name) as executor:
        engine = ParBoXEngine(cluster, executor=executor)
        result = benchmark(lambda: engine.evaluate(qlist))
    assert result.details["executor"] == executor_name
    assert result.metrics.max_visits_per_site() == 1


def test_process_warm_start_shrinks_first_batch(cluster, qlist):
    """The opt-in warm start pre-pays worker spawn and fragment pushes.

    Cold: the first evaluation through a fresh pool carries spawn plus
    the one-time fragment push.  Warm (``warm=cluster``): both are paid
    at construction, so the first evaluation must (a) ship nothing new
    and (b) land materially closer to the steady-state cost than the
    cold first batch does.
    """
    import time

    from repro.distsim.executors import ProcessSiteExecutor

    def first_and_steady(executor):
        engine = ParBoXEngine(cluster, executor=executor)
        started = time.perf_counter()
        answer = engine.evaluate(qlist).answer
        first_s = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(3):
            assert engine.evaluate(qlist).answer == answer
        return first_s, (time.perf_counter() - started) / 3

    with ProcessSiteExecutor() as cold_executor:
        cold_first, cold_steady = first_and_steady(cold_executor)
        cold_ships = cold_executor.stats["ships"]
    with ProcessSiteExecutor(warm=cluster) as warm_executor:
        prepaid = warm_executor.stats["ships"]
        warm_first, _ = first_and_steady(warm_executor)
        assert warm_executor.stats["ships"] == prepaid  # nothing left to ship
    assert prepaid == cold_ships  # identical residency, paid up front
    # The first-vs-steady-state gap shrinks under warm start: the warm
    # first batch must beat the cold one and sit near steady state.
    assert warm_first < cold_first
    assert (warm_first - cold_steady) < (cold_first - cold_steady) * 0.5


def test_fig_executors(benchmark, config):
    regenerate_and_check(benchmark, executors_realtime, "executors", config)
