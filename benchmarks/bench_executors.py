"""Micro-benchmarks: per-query cost of each site-execution strategy.

Measures one ParBoX evaluation per executor on the FT1 star (one
fragment per site, so the fan-out matches the worker count), plus the
regeneration of the ``executors`` comparison experiment.  The serial
strategy is the baseline; threads add pool dispatch overhead but
overlap site work where the interpreter allows; processes pay wire
serialization per batch in exchange for GIL-free evaluation.
"""

import pytest

from conftest import regenerate_and_check

from repro.bench.experiments import executors_realtime
from repro.core import ParBoXEngine
from repro.distsim.executors import EXECUTOR_REGISTRY, resolve_executor
from repro.workloads.queries import query_of_size
from repro.workloads.topologies import star_ft1


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        star_ft1(6, config.total_mb / 2, seed=99, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def qlist():
    return query_of_size(8)


@pytest.mark.parametrize("executor_name", sorted(EXECUTOR_REGISTRY))
def test_engine_parbox_executor(benchmark, cluster, qlist, executor_name):
    with resolve_executor(executor_name) as executor:
        engine = ParBoXEngine(cluster, executor=executor)
        result = benchmark(lambda: engine.evaluate(qlist))
    assert result.details["executor"] == executor_name
    assert result.metrics.max_visits_per_site() == 1


def test_fig_executors(benchmark, config):
    regenerate_and_check(benchmark, executors_realtime, "executors", config)
