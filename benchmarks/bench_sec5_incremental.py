"""Section 5 (added experiment): incremental view maintenance bounds.

After an update inside one fragment, maintenance must visit only that
fragment's site with traffic independent of |T| and of the update size,
while from-scratch re-evaluation grows with the data.
"""

from repro.bench.experiments import sec5_incremental
from conftest import regenerate_and_check


def test_sec5_incremental(benchmark, config):
    regenerate_and_check(benchmark, sec5_incremental, "sec5-incremental", config)
