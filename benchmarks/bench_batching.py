"""Batched multi-query evaluation: amortization curve + session cost.

Regenerates the ``batching`` experiment (traffic-per-query must fall
strictly as the batch size grows) and micro-benchmarks one
``QuerySession.evaluate_many`` call against the equivalent sequential
``evaluate()`` loop, so a regression in the planner or the combined
bottom-up pass shows up as lost amortization.
"""

import pytest

from conftest import regenerate_and_check

from repro.bench.experiments import batching_amortization
from repro.core import QuerySession
from repro.workloads.pubsub import subscription_texts
from repro.workloads.topologies import star_ft1


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        star_ft1(6, config.total_mb / 2, seed=7, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def texts():
    return subscription_texts(16, seed=7)


def test_session_batched(benchmark, cluster, texts):
    with QuerySession(cluster, engine="parbox") as session:
        outcome = benchmark(lambda: session.evaluate_many(texts))
    assert len(outcome.answers) == len(texts)
    # One broadcast round for the whole stream: a single visit per site.
    assert all(batch.metrics.max_visits_per_site() == 1 for batch in outcome.batches)


def test_sequential_loop(benchmark, cluster, texts):
    with QuerySession(cluster, engine="parbox") as session:
        qlists = [session.compile(text) for text in texts]
        engine = session.engine
        results = benchmark(lambda: [engine.evaluate(qlist) for qlist in qlists])
    assert len(results) == len(texts)


def test_batched_traffic_beats_sequential(cluster, texts):
    with QuerySession(cluster, engine="parbox") as session:
        outcome = session.evaluate_many(texts)
        sequential_bytes = sum(
            session.evaluate(text).metrics.bytes_total for text in texts
        )
    assert outcome.bytes_total < sequential_bytes


def test_fig_batching(benchmark, config):
    regenerate_and_check(benchmark, batching_amortization, "batching", config)
