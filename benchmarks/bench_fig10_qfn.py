"""Figure 10: qFn on the FT2 chain (Experiment 2).

Query satisfied at the deepest fragment: ParBoX and FullDistParBoX stay
parallel and flat; LazyParBoX degrades with depth (its per-depth steps
serialize) and ends up evaluating every fragment anyway.
"""

from repro.bench.experiments import fig10_qfn
from conftest import regenerate_and_check


def test_fig10_series(benchmark, config):
    regenerate_and_check(benchmark, fig10_qfn, "fig10", config)
