"""Shared configuration for the benchmark suite.

Each ``bench_fig*.py`` file regenerates one figure/table of the paper:
the whole sweep runs once under ``benchmark.pedantic`` (so
pytest-benchmark reports the figure-regeneration time), the series is
printed (visible with ``-s`` or on failure), and the figure's *shape
checks* -- the qualitative claims of the paper -- are asserted.

Scale control: set ``REPRO_BENCH_QUICK=1`` for a miniature run (shape
checks are then skipped; tiny fragments are latency-dominated and some
trends disappear below the noise floor).
"""

import os

import pytest

from repro.bench.experiments import BenchConfig
from repro.bench.shape_checks import CHECKS

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="session")
def config() -> BenchConfig:
    """The benchmark scale (default: the EXPERIMENTS.md scale)."""
    return BenchConfig.quick() if QUICK else BenchConfig.default()


def regenerate_and_check(benchmark, runner, experiment_id, config):
    """Run one experiment under the benchmark timer and assert its shape."""
    result = benchmark.pedantic(lambda: runner(config), rounds=1, iterations=1)
    print()
    print(result.render())
    if QUICK:
        return result
    checks = CHECKS[experiment_id](result)
    for claim, passed in checks.items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {claim}")
    failed = [claim for claim, passed in checks.items() if not passed]
    assert not failed, f"{experiment_id} shape claims failed: {failed}"
    return result
