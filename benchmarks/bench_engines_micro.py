"""Micro-benchmarks: steady-state per-query cost of each engine.

Unlike the figure regenerations (one timed sweep each), these measure a
single engine evaluation with pytest-benchmark's statistics, on a fixed
mid-size workload (FT2 chain of 6 fragments), plus the front-end
(parse/normalize/compile) and the maintenance path.
"""

import pytest

from repro.core import (
    FullDistParBoXEngine,
    LazyParBoXEngine,
    NaiveCentralizedEngine,
    NaiveDistributedEngine,
    ParBoXEngine,
    SelectionEngine,
)
from repro.views import MaterializedView
from repro.workloads.queries import query_of_size, seal_query
from repro.workloads.topologies import chain_ft2
from repro.xmltree import XMLNode
from repro.xpath import compile_query


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        chain_ft2(6, config.total_mb / 2, seed=99, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def qlist():
    return query_of_size(8)


def test_engine_parbox(benchmark, cluster, qlist):
    result = benchmark(lambda: ParBoXEngine(cluster).evaluate(qlist))
    assert result.metrics.max_visits_per_site() == 1


def test_engine_parbox_threaded(benchmark, cluster, qlist):
    engine = ParBoXEngine(cluster)
    result = benchmark(lambda: engine.evaluate_threaded(qlist))
    assert result.details["backend"] == "threads"


def test_engine_naive_centralized(benchmark, cluster, qlist):
    benchmark(lambda: NaiveCentralizedEngine(cluster).evaluate(qlist))


def test_engine_naive_distributed(benchmark, cluster, qlist):
    benchmark(lambda: NaiveDistributedEngine(cluster).evaluate(qlist))


def test_engine_fulldist(benchmark, cluster, qlist):
    benchmark(lambda: FullDistParBoXEngine(cluster).evaluate(qlist))


def test_engine_lazy(benchmark, cluster):
    benchmark(lambda: LazyParBoXEngine(cluster).evaluate(seal_query("F3")))


def test_engine_selection(benchmark, cluster):
    qlist = compile_query("[//person/name]")
    result = benchmark(lambda: SelectionEngine(cluster).select(qlist))
    assert result.result.metrics.max_visits_per_site() == 2


def test_query_compilation(benchmark):
    text = '[not(//open_auction[bidder/increase/text() = "7"]) and //profile[education]]'
    qlist = benchmark(lambda: compile_query(text))
    assert len(qlist) == 23


def test_view_maintenance_refresh(benchmark, cluster, qlist):
    view = MaterializedView.create(cluster, qlist)
    target = cluster.fragment("F3").root

    def update_and_refresh():
        target.add_child(XMLNode("note", text="x"))
        return view.refresh_fragment("F3")

    report = benchmark(update_and_refresh)
    assert report.is_localized()
