"""Placement optimization: workload-aware vs balanced-random.

Regenerates the ``placement`` experiment (the optimizer's placement
must beat balanced-random on predicted *and* measured cost, with
predictions ranking candidates truthfully and live rebalancing
preserving every standing answer) and micro-benchmarks the two costs a
production coordinator cares about: how long one optimization pass
takes (pure metadata search -- no XML is touched) and how long enacting
a plan through a standing query book takes (real data migration plus
maintenance).
"""

import pytest

from conftest import regenerate_and_check

from repro.bench.experiments import placement_optimizer
from repro.core import QuerySession
from repro.distsim import Cluster
from repro.fragments import Placement
from repro.placement import (
    Constraints,
    Workload,
    balanced_random_placement,
    optimize_placement,
)
from repro.workloads.pubsub import subscription_texts
from repro.workloads.topologies import bushy_ft3


@pytest.fixture(scope="module")
def workload():
    return Workload.from_queries(
        subscription_texts(16, seed=7), update_rates={"F4": 4.0, "F5": 2.0}
    )


@pytest.fixture(scope="module")
def constraints(cluster):
    return Constraints(site_capacity=int(cluster.total_size() / 4 * 1.9), max_sites=4)


@pytest.fixture(scope="module")
def cluster(config):
    base = config.with_network(bushy_ft3(0, seed=7, nodes_per_mb=config.nodes_per_mb))
    placement = balanced_random_placement(
        base.fragmented_tree, [f"S{i}" for i in range(4)], seed=1
    )
    return config.with_network(Cluster(base.fragmented_tree, placement))


def test_optimize_pass(benchmark, cluster, workload, constraints):
    assignment_before = dict(cluster.placement.items())
    plan = benchmark(lambda: optimize_placement(cluster, workload, constraints))
    # The search runs in metadata space: the cluster must be untouched.
    assert plan.before.total() >= plan.after.total()
    assert dict(cluster.placement.items()) == assignment_before


def test_enact_under_watch(benchmark, config, workload, constraints):
    def build():
        base = config.with_network(
            bushy_ft3(0, seed=7, nodes_per_mb=config.nodes_per_mb)
        )
        placement = balanced_random_placement(
            base.fragmented_tree, [f"S{i}" for i in range(4)], seed=1
        )
        return config.with_network(Cluster(base.fragmented_tree, placement))

    def enact():
        with QuerySession(build(), engine="parbox") as session:
            watch = session.watch(subscription_texts(16, seed=7))
            before = tuple(watch.answers().values())
            outcome = session.rebalance(
                workload=workload, maintainer=watch, constraints=constraints
            )
            assert tuple(watch.answers().values()) == before
            watch.close()
            return outcome

    outcome = benchmark.pedantic(enact, rounds=1, iterations=1)
    assert not outcome.plan.is_noop()
    assert outcome.migration_bytes > 0


def test_fig_placement(benchmark, config):
    regenerate_and_check(benchmark, placement_optimizer, "placement", config)
