"""Serving-tier overhead: the same batch in-process vs over the gateway.

Two micro-benchmarks on one topology: ``QuerySession`` straight onto a
local ParBoX engine, and the identical session pointed at a
:class:`~repro.serving.cluster.ServingCluster` gateway (real sockets,
inline site servers).  The delta is the serving tax -- framing,
loopback round-trips and the coordinator's thread hop -- paid for
running sites as real network peers.  A correctness cross-check keeps
the comparison honest: both paths must return identical answers and
identical deterministic ledgers.

``REPRO_BENCH_QUICK=1`` shrinks the topology and batch.
"""

import pytest

from conftest import QUICK

from repro.core import QuerySession
from repro.serving import ServingCluster
from repro.workloads.pubsub import subscription_texts
from repro.workloads.topologies import star_ft1

SITES = 3 if QUICK else 6
BATCH = 4 if QUICK else 16
MB = 0.05 if QUICK else 0.5


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        star_ft1(SITES, MB, seed=7, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def texts():
    return subscription_texts(BATCH, seed=7)


@pytest.fixture(scope="module")
def serving(cluster):
    with ServingCluster(cluster) as tier:
        yield tier


def test_serving_in_process_baseline(benchmark, cluster, texts):
    with QuerySession(cluster, engine="parbox") as session:
        session.evaluate_batch(texts)  # warm the compile cache
        result = benchmark(lambda: session.evaluate_batch(texts))
    assert len(result.answers) == len(texts)


def test_serving_over_gateway(benchmark, cluster, serving, texts):
    with serving.session(engine="parbox") as session:
        session.evaluate_batch(texts)  # warm caches and site links
        result = benchmark(lambda: session.evaluate_batch(texts))
    assert len(result.answers) == len(texts)
    # The serving tier must be transparent: same answers, same ledger.
    with QuerySession(cluster, engine="parbox") as local:
        expected = local.evaluate_batch(texts)
    assert result.answers == expected.answers
    assert result.metrics.bytes_total == expected.metrics.bytes_total
    assert result.metrics.visits == expected.metrics.visits


def test_serving_gateway_throughput_sequential_sessions(benchmark, serving, texts):
    """Connection setup included: one fresh session per round, the cost a
    short-lived client actually pays."""

    def round_trip():
        with serving.session(engine="parbox") as session:
            return session.evaluate_batch(texts)

    result = benchmark(round_trip)
    assert len(result.answers) == len(texts)
