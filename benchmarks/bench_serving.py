"""Serving-tier overhead: the same batch in-process vs over the gateway.

Two micro-benchmarks on one topology: ``QuerySession`` straight onto a
local ParBoX engine, and the identical session pointed at a
:class:`~repro.serving.cluster.ServingCluster` gateway (real sockets,
inline site servers).  The delta is the serving tax -- framing,
loopback round-trips and the coordinator's thread hop -- paid for
running sites as real network peers.  A correctness cross-check keeps
the comparison honest: both paths must return identical answers and
identical deterministic ledgers.  A scale-out row rides along: the
same concurrent load against a 1- and a 2-coordinator gateway pool,
whose throughput ratio is gated against a no-regression floor (a
single-core host cannot show parallel speedup; a multi-core one
should approach the >= 1.5x scale-out target).

``REPRO_BENCH_QUICK=1`` shrinks the topology and batch.

Standalone (the CI regression gate)::

    python benchmarks/bench_serving.py --quick \
        --json BENCH_serving.json --baseline BENCH_serving.json

``--json`` merge-writes this scale's results into the trajectory file;
``--baseline`` fails the run when the measured serving-tax ratio
worsened more than 25% against the committed same-scale entry.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from conftest import QUICK

from repro.core import QuerySession
from repro.serving import ServingCluster
from repro.workloads.pubsub import subscription_texts
from repro.workloads.topologies import star_ft1

#: Allowed worsening of the serving-tax ratio vs the committed baseline.
REGRESSION_TOLERANCE = 1.25

#: Floor on the 1->2 coordinator throughput ratio.  On a multi-core host
#: the pool genuinely parallelizes (the scale-out acceptance target is
#: >= 1.5x there); the single-core CI box time-shares one CPU across
#: both coordinators, so the local gate only demands that a second
#: coordinator costs nothing material -- the ratio must not fall below
#: this floor.
SCALING_FLOOR = 0.75

SITES = 3 if QUICK else 6
BATCH = 4 if QUICK else 16
MB = 0.05 if QUICK else 0.5


@pytest.fixture(scope="module")
def cluster(config):
    return config.with_network(
        star_ft1(SITES, MB, seed=7, nodes_per_mb=config.nodes_per_mb)
    )


@pytest.fixture(scope="module")
def texts():
    return subscription_texts(BATCH, seed=7)


@pytest.fixture(scope="module")
def serving(cluster):
    with ServingCluster(cluster) as tier:
        yield tier


def test_serving_in_process_baseline(benchmark, cluster, texts):
    with QuerySession(cluster, engine="parbox") as session:
        session.evaluate_batch(texts)  # warm the compile cache
        result = benchmark(lambda: session.evaluate_batch(texts))
    assert len(result.answers) == len(texts)


def test_serving_over_gateway(benchmark, cluster, serving, texts):
    with serving.session(engine="parbox") as session:
        session.evaluate_batch(texts)  # warm caches and site links
        result = benchmark(lambda: session.evaluate_batch(texts))
    assert len(result.answers) == len(texts)
    # The serving tier must be transparent: same answers, same ledger.
    with QuerySession(cluster, engine="parbox") as local:
        expected = local.evaluate_batch(texts)
    assert result.answers == expected.answers
    assert result.metrics.bytes_total == expected.metrics.bytes_total
    assert result.metrics.visits == expected.metrics.visits


def test_serving_gateway_throughput_sequential_sessions(benchmark, serving, texts):
    """Connection setup included: one fresh session per round, the cost a
    short-lived client actually pays."""

    def round_trip():
        with serving.session(engine="parbox") as session:
            return session.evaluate_batch(texts)

    result = benchmark(round_trip)
    assert len(result.answers) == len(texts)


# ---------------------------------------------------------------------------
# Standalone mode: the CI regression gate over the serving tax
# ---------------------------------------------------------------------------


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def run_serving(quick: bool = False, seed: int = 7) -> dict:
    """One local-vs-gateway comparison; returns the JSON-able document."""
    from repro.bench.experiments import BenchConfig

    config = BenchConfig.quick() if quick else BenchConfig.default()
    sites = 3 if quick else 6
    batch = 4 if quick else 16
    mb = 0.05 if quick else 0.5
    repeats = 9 if quick else 5
    cluster = config.with_network(
        star_ft1(sites, mb, seed=seed, nodes_per_mb=config.nodes_per_mb)
    )
    texts = subscription_texts(batch, seed=seed)

    with QuerySession(cluster, engine="parbox") as session:
        local = session.evaluate_batch(texts)  # warm compile caches
        local_s = _median_seconds(lambda: session.evaluate_batch(texts), repeats)

    with ServingCluster(cluster) as tier:
        with tier.session(engine="parbox") as session:
            gateway = session.evaluate_batch(texts)  # warm links and pushes
            gateway_s = _median_seconds(
                lambda: session.evaluate_batch(texts), repeats
            )
        latency_ms = _gateway_latency_ms(tier)

    # The tier must be transparent before its cost means anything.
    assert gateway.answers == local.answers, "serving tier changed answers"
    assert gateway.metrics.bytes_total == local.metrics.bytes_total
    assert gateway.metrics.visits == local.metrics.visits

    return {
        "scale": "quick" if quick else "default",
        "sites": sites,
        "batch": batch,
        "repeats": repeats,
        "local_ms": round(local_s * 1000, 2),
        "gateway_ms": round(gateway_s * 1000, 2),
        "tax_ratio": round(gateway_s / local_s, 2),
        "latency_ms": latency_ms,
        "scaling": run_scaling(quick=quick, seed=seed),
    }


def run_scaling(quick: bool = False, seed: int = 7) -> dict:
    """Concurrent throughput with a 1- vs 2-coordinator gateway pool.

    Four client threads drive distinct standing batches (so the hash
    router spreads them across the pool) through the same
    ``ServingCluster`` booted with ``coordinators=1`` and then ``2``.
    ``ratio_1_to_2`` is the headline scale-out number: > 1 means the
    second coordinator bought throughput.  On a single-core host both
    coordinators time-share one CPU, so the honest expectation there is
    ~1.0x (routing costs nothing), not the multi-core >= 1.5x target.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.bench.experiments import BenchConfig

    config = BenchConfig.quick() if quick else BenchConfig.default()
    sites = 3 if quick else 6
    mb = 0.05 if quick else 0.5
    requests = 40 if quick else 80
    clients = 4
    cluster = config.with_network(
        star_ft1(sites, mb, seed=seed, nodes_per_mb=config.nodes_per_mb)
    )
    pool_texts = subscription_texts(8, seed=seed)
    batches = [
        [pool_texts[i], pool_texts[(i + 1) % len(pool_texts)]]
        for i in range(len(pool_texts))
    ]

    def measure(coordinators: int) -> float:
        with ServingCluster(cluster, coordinators=coordinators) as tier:
            sessions = [tier.session(engine="parbox") for _ in range(clients)]
            try:
                for index, session in enumerate(sessions):
                    session.evaluate_batch(batches[index % len(batches)])

                def work(worker: int) -> None:
                    session = sessions[worker]
                    for step in range(requests // clients):
                        session.evaluate_batch(
                            batches[(worker * 7 + step) % len(batches)]
                        )

                started = time.perf_counter()
                with ThreadPoolExecutor(max_workers=clients) as pool:
                    list(pool.map(work, range(clients)))
                elapsed = time.perf_counter() - started
            finally:
                for session in sessions:
                    session.close()
        return requests / max(elapsed, 1e-9)

    single_rps = measure(1)
    double_rps = measure(2)
    return {
        "clients": clients,
        "requests": requests,
        "rps_1_coordinator": round(single_rps, 2),
        "rps_2_coordinators": round(double_rps, 2),
        "ratio_1_to_2": round(double_rps / single_rps, 3),
    }


def _gateway_latency_ms(tier) -> dict:
    """Request-latency percentiles from the gateway's own histogram.

    Server-side observations (``gateway_request_seconds``) cover every
    request the tier handled during this run -- warmup included -- so
    they complement, not replace, the client-side medians above.
    """
    from repro.obs.metrics import histogram_percentiles

    with tier.client() as client:
        snapshot = client.metrics().snapshot
    values = snapshot.get("gateway_request_seconds", {}).get("values", {})
    if not values:
        return {}
    histogram = next(iter(values.values()))
    quantiles = histogram_percentiles(histogram, (0.5, 0.95, 0.99))
    return {
        f"p{int(q * 100)}": round(seconds * 1000, 2)
        for q, seconds in quantiles.items()
        if seconds is not None
    }


def render(result: dict) -> str:
    return "\n".join(
        [
            f"serving @ {result['scale']} scale "
            f"({result['sites']} sites, batch of {result['batch']}, "
            f"median of {result['repeats']} runs)",
            f"  in-process session: {result['local_ms']}ms",
            f"  over the gateway:   {result['gateway_ms']}ms",
            f"  serving-tax ratio:  {result['tax_ratio']}x",
        ]
        + (
            [
                "  gateway latency:    "
                + "  ".join(
                    f"{name}={ms}ms"
                    for name, ms in sorted(result["latency_ms"].items())
                )
            ]
            if result.get("latency_ms")
            else []
        )
        + (
            [
                f"  coordinator scale-out ({result['scaling']['clients']} clients, "
                f"{result['scaling']['requests']} requests): "
                f"{result['scaling']['rps_1_coordinator']} req/s @1 -> "
                f"{result['scaling']['rps_2_coordinators']} req/s @2 "
                f"({result['scaling']['ratio_1_to_2']}x)"
            ]
            if result.get("scaling")
            else []
        )
    )


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--quick", action="store_true", help="miniature scale")
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="merge-write results per scale"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="committed trajectory to gate regressions against (>25%% fails)",
    )
    args = parser.parse_args(argv)

    baseline: dict = {}
    if args.baseline and Path(args.baseline).exists():
        baseline = json.loads(Path(args.baseline).read_text())

    result = run_serving(quick=args.quick)
    print(render(result))

    if args.json:
        path = Path(args.json)
        trajectory = json.loads(path.read_text()) if path.exists() else {}
        trajectory[result["scale"]] = result
        path.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(f"wrote {args.json}")

    failures = []
    reference = baseline.get(result["scale"])
    if reference:
        threshold = reference["tax_ratio"] * REGRESSION_TOLERANCE
        verdict = "PASS" if result["tax_ratio"] <= threshold else "FAIL"
        print(
            f"  [{verdict}] vs committed baseline: {result['tax_ratio']}x "
            f"<= {threshold:.2f}x (= {reference['tax_ratio']}x + 25%)"
        )
        if verdict == "FAIL":
            failures.append(
                f"serving tax worsened >25% vs baseline ({reference['tax_ratio']}x)"
            )
    scaling = result.get("scaling")
    if scaling:
        ratio = scaling["ratio_1_to_2"]
        scaling_verdict = "PASS" if ratio >= SCALING_FLOOR else "FAIL"
        print(
            f"  [{scaling_verdict}] 1->2 coordinator throughput ratio "
            f"{ratio}x >= {SCALING_FLOOR}x floor"
        )
        if scaling_verdict == "FAIL":
            failures.append(
                f"2-coordinator throughput fell to {ratio}x of 1-coordinator "
                f"(floor {SCALING_FLOOR}x)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
